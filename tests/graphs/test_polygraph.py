"""Polygraphs: structure, properties (a)-(c), and acyclicity deciders."""

import random

import pytest

from repro.graphs.polygraph import Polygraph, random_polygraph


def triangle_forced() -> Polygraph:
    """A polygraph whose only choice is forced into a cycle: not acyclic.

    Arc 0->1 with choice (1, 2, 0) and base arcs making both branches
    close a cycle.
    """
    poly = Polygraph.of(nodes=[0, 1, 2])
    poly.add_choice(1, 2, 0)  # adds arc (0, 1); branches (1,2) or (2,0)
    poly.add_arc(2, 1)  # (1,2) would close 1->2? no: 2->1 + (1,2) = cycle
    poly.add_arc(0, 2)  # (2,0) closes 0->2->0
    return poly


class TestStructure:
    def test_add_choice_adds_definitional_arc(self):
        poly = Polygraph()
        poly.add_choice("j", "k", "i")
        assert ("i", "j") in poly.arcs
        poly.validate()

    def test_validate_detects_missing_arc(self):
        poly = Polygraph(nodes={1, 2, 3}, arcs=set(), choices=[(2, 3, 1)])
        with pytest.raises(ValueError):
            poly.validate()

    def test_property_a(self):
        poly = Polygraph()
        poly.add_choice(2, 3, 1)
        assert poly.has_property_a()
        poly.add_arc(3, 4)
        assert not poly.has_property_a()

    def test_ensure_property_a_adds_fresh_nodes(self):
        poly = Polygraph()
        poly.add_choice(2, 3, 1)
        poly.add_arc(3, 4)
        fixed = poly.ensure_property_a()
        assert fixed.has_property_a()
        assert len(fixed.nodes) == len(poly.nodes) + 1

    def test_ensure_property_a_preserves_acyclicity(self):
        rng = random.Random(0)
        for _ in range(40):
            poly = random_polygraph(4, 3, 2, rng)
            assert poly.is_acyclic() == poly.ensure_property_a().is_acyclic()

    def test_first_branch_graph(self):
        poly = Polygraph()
        poly.add_choice(2, 3, 1)
        poly.add_choice(3, 2, 4)
        g = poly.first_branch_graph()
        assert g.has_arc(2, 3) and g.has_arc(3, 2)
        assert g.has_cycle()

    def test_choices_node_disjoint(self):
        poly = Polygraph()
        poly.add_choice(2, 3, 1)
        assert poly.choices_node_disjoint()
        poly.add_choice(5, 3, 4)
        assert not poly.choices_node_disjoint()


class TestAcyclicity:
    def test_no_choices_reduces_to_digraph(self):
        acyclic = Polygraph.of(nodes=[1, 2], arcs=[(1, 2)])
        assert acyclic.is_acyclic()
        cyclic = Polygraph.of(nodes=[1, 2], arcs=[(1, 2), (2, 1)])
        assert not cyclic.is_acyclic()

    def test_choice_resolves_conflict(self):
        # (2,3) would close a cycle, (3,1) would not.
        poly = Polygraph.of(nodes=[1, 2, 3], arcs=[(3, 2)])
        poly.add_choice(2, 3, 1)
        selection = poly.acyclic_selection()
        assert selection is not None
        assert poly.compatible_digraph(selection).is_acyclic()

    def test_forced_cycle(self):
        assert not triangle_forced().is_acyclic()

    def test_selection_indexing_matches_choices(self):
        poly = Polygraph.of(nodes=[1, 2, 3], arcs=[(3, 2)])
        poly.add_choice(2, 3, 1)
        sel = poly.acyclic_selection()
        j, k, i = poly.choices[0]
        g = poly.compatible_digraph(sel)
        assert g.has_arc(j, k) or g.has_arc(k, i)

    def test_backtracker_agrees_with_bruteforce(self):
        rng = random.Random(42)
        for _ in range(150):
            poly = random_polygraph(
                rng.randint(3, 6), rng.randint(1, 5), rng.randint(0, 4), rng
            )
            assert poly.is_acyclic() == poly.is_acyclic_bruteforce()

    def test_str(self):
        assert "Polygraph" in str(random_polygraph(3, 1, 1, random.Random(0)))


class TestRandomPolygraph:
    def test_arc_graph_acyclic_by_construction(self):
        rng = random.Random(5)
        for _ in range(30):
            poly = random_polygraph(5, 4, 3, rng)
            assert poly.arc_graph().is_acyclic()
            poly.validate()

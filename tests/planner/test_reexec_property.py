"""Property test: re-execution equals the serial oracle.

The re-execution fixpoint (:mod:`repro.planner.reexec`) claims that a
planner batch with logic aborts still realizes *exactly* the state a
serial executor would: run the stream one transaction at a time in
timestamp order, skip any transaction whose program raises, commit the
rest.  That claim is what makes re-execution safe to default on — it
recovers committed throughput without changing what a run means.

This file states the oracle independently (a dozen lines over a plain
dict, sharing only :func:`repro.storage.executor.write_value` so write
semantics cannot diverge) and checks, on randomized workloads mixing
clean transfers, unconditional aborts, and *value-dependent* aborts
(the chained-re-abort case the fixpoint loop exists for):

* committed set and final state are identical to the oracle, in both
  abort-free modes;
* re-execution never commits less than the poison cascade it replaces;
* concurrency-control aborts stay zero — re-execution must not
  reintroduce the failure mode the planner family eliminates.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.obs import Tracer
from repro.planner import BatchPlanner, PipelinedPlanner
from repro.storage.executor import write_value
from repro.workloads.bank import transfer_program, transfer_transaction

INITIAL_BALANCE = 100


class InjectedAbort(RuntimeError):
    pass


def boom_program(label):
    """A program that logic-aborts unconditionally."""

    def program(write_index, reads):
        raise InjectedAbort(label)

    return program


def guarded_program(amount, floor):
    """Debit only while the source stays above ``floor`` — a
    *value-dependent* abort, so whether it fires depends on which
    earlier transactions committed.  This is what forces re-executed
    transactions to re-abort and the fixpoint to iterate."""

    def program(write_index, reads):
        if reads[0] - amount < floor:
            raise InjectedAbort("guard")
        return transfer_program(amount)(write_index, reads)

    return program


def serial_oracle(initial, stream):
    """Run the stream serially in timestamp order; a raising program
    commits nothing.  Returns (final_state, committed txn ids)."""
    state = dict(initial)
    committed = []
    for txn, program in stream:
        reads = []
        writes = {}
        write_index = 0
        try:
            for step in txn.steps:
                if step.is_read:
                    reads.append(writes.get(step.entity, state[step.entity]))
                else:
                    writes[step.entity] = write_value(
                        program, txn.txn, write_index, reads
                    )
                    write_index += 1
        except InjectedAbort:
            continue
        state.update(writes)
        committed.append(str(txn.txn))
    return state, committed


@st.composite
def abort_workloads(draw):
    """Random transfer streams with unconditional and value-dependent
    aborts, over a small hot account pool so poison chains form."""
    n_accounts = draw(st.integers(min_value=3, max_value=5))
    accounts = [f"a{i}" for i in range(n_accounts)]
    n_txns = draw(st.integers(min_value=1, max_value=14))
    stream = []
    for k in range(n_txns):
        source = draw(st.sampled_from(accounts), label=f"src:{k}")
        target = draw(
            st.sampled_from([a for a in accounts if a != source]),
            label=f"dst:{k}",
        )
        amount = draw(st.integers(min_value=1, max_value=40))
        kind = draw(
            st.sampled_from(["ok", "ok", "boom", "guard"]),
            label=f"kind:{k}",
        )
        if kind == "boom":
            program = boom_program(f"t{k}")
        elif kind == "guard":
            floor = draw(st.integers(min_value=0, max_value=120))
            program = guarded_program(amount, floor)
        else:
            program = transfer_program(amount)
        stream.append((transfer_transaction(f"t{k}", source, target), program))
    batch_size = draw(st.integers(min_value=1, max_value=8))
    return accounts, stream, batch_size


def committed_ids(tracer):
    return sorted(
        event.args["txn"]
        for event in tracer.events
        if event.name == "txn.commit"
    )


@given(abort_workloads())
@settings(max_examples=80, deadline=None)
def test_reexec_matches_serial_oracle(workload):
    accounts, stream, batch_size = workload
    initial = {a: INITIAL_BALANCE for a in accounts}
    oracle_state, oracle_committed = serial_oracle(initial, stream)

    tracer = Tracer(capacity=None)
    planner = BatchPlanner(
        initial=initial, n_workers=2, batch_size=batch_size,
        deterministic=True, tracer=tracer,
    )
    metrics = planner.run(stream)

    # final_state() covers touched entities; untouched ones keep the
    # initial value, so overlay it for a total-state comparison.
    assert {**initial, **planner.final_state()} == oracle_state
    assert committed_ids(tracer) == sorted(oracle_committed)
    assert metrics.committed == len(oracle_committed)
    assert metrics.cc_aborts == 0
    assert metrics.cascade_aborted == 0
    assert planner.store.placeholder_count() == 0


@given(abort_workloads())
@settings(max_examples=40, deadline=None)
def test_pipelined_reexec_matches_serial_oracle(workload):
    accounts, stream, batch_size = workload
    initial = {a: INITIAL_BALANCE for a in accounts}
    oracle_state, oracle_committed = serial_oracle(initial, stream)

    tracer = Tracer(capacity=None)
    planner = PipelinedPlanner(
        initial=initial, n_workers=2, batch_size=batch_size,
        lookahead=2, deterministic=True, tracer=tracer,
    )
    metrics = planner.run(stream)

    assert {**initial, **planner.final_state()} == oracle_state
    assert committed_ids(tracer) == sorted(oracle_committed)
    assert metrics.committed == len(oracle_committed)
    assert metrics.cc_aborts == 0
    assert metrics.cascade_aborted == 0


@given(abort_workloads())
@settings(max_examples=40, deadline=None)
def test_reexec_never_commits_less_than_the_cascade(workload):
    accounts, stream, batch_size = workload
    initial = {a: INITIAL_BALANCE for a in accounts}

    cascade = BatchPlanner(
        initial=initial, n_workers=2, batch_size=batch_size,
        deterministic=True, reexecute=False,
    )
    baseline = cascade.run(stream)

    reexec = BatchPlanner(
        initial=initial, n_workers=2, batch_size=batch_size,
        deterministic=True,
    )
    recovered = reexec.run(stream)

    assert recovered.committed >= baseline.committed
    assert recovered.cascade_aborted == 0
    assert recovered.cc_aborts == baseline.cc_aborts == 0

"""The planning phase: slot reservation and read binding."""

import pytest

from repro.engine.errors import EngineError
from repro.model.schedules import T_INIT
from repro.model.transactions import Transaction
from repro.planner.planning import plan_batch
from repro.storage.sharded import ShardedMultiversionStore


def plan(items, n_shards=4, initial=None, threaded=False):
    store = ShardedMultiversionStore(n_shards, initial or {})
    return plan_batch(items, store, 0, 0, threaded=threaded), store


def by_txn(batch_plan):
    return {p.txn: p for p in batch_plan}


class TestReservation:
    def test_every_write_reserves_a_slot_in_order(self):
        t1 = Transaction.build("A", ("W", "x"), ("W", "y"), ("W", "x"))
        batch, store = plan([(t1, None)])
        ptxn = by_txn(batch)["A"]
        assert len(ptxn.slots) == 3
        assert [s.entity for s in ptxn.slots] == ["x", "y", "x"]
        # Positions follow global (timestamp, step) order.
        assert [s.position for s in ptxn.slots] == [0, 1, 2]
        # Chain order of x matches: base, then the two reserved slots.
        assert [v.position for v in store.versions("x")] == [None, 0, 2]
        assert store.placeholder_count() == 3
        # Reserved slots are not materialized: only x/y initials count.
        assert store.version_count() == 2

    def test_positions_continue_across_transactions(self):
        t1 = Transaction.build("A", ("W", "x"))
        t2 = Transaction.build("B", ("W", "x"))
        batch, store = plan([(t1, None), (t2, None)])
        planned = by_txn(batch)
        assert planned["A"].slots[0].position == 0
        assert planned["B"].slots[0].position == 1
        assert planned["A"].timestamp < planned["B"].timestamp


class TestBinding:
    def test_base_read_binds_committed_state(self):
        t1 = Transaction.build("A", ("R", "x"))
        batch, store = plan([(t1, None)], initial={"x": 42})
        binding = by_txn(batch)["A"].bindings[0]
        assert binding.is_base
        assert binding.source_txn == T_INIT
        assert binding.source.value == 42
        assert by_txn(batch)["A"].deps == frozenset()

    def test_read_binds_newest_smaller_timestamp_write(self):
        t1 = Transaction.build("A", ("W", "x"))
        t2 = Transaction.build("B", ("W", "x"))
        t3 = Transaction.build("C", ("R", "x"))
        batch, _ = plan([(t1, None), (t2, None), (t3, None)])
        planned = by_txn(batch)
        binding = planned["C"].bindings[0]
        assert binding.source_txn == "B"
        assert binding.source is planned["B"].slots[0]
        # MVTO rule: the dependency is on B only, never A.
        assert planned["C"].deps == frozenset({"B"})

    def test_own_write_shadows_earlier_transactions(self):
        t1 = Transaction.build("A", ("W", "x"))
        t2 = Transaction.build("B", ("W", "x"), ("R", "x"))
        batch, _ = plan([(t1, None), (t2, None)])
        planned = by_txn(batch)
        binding = planned["B"].bindings[0]
        assert binding.is_own
        assert binding.source is planned["B"].slots[0]
        # An own-write read is not a commit dependency.
        assert planned["B"].deps == frozenset()

    def test_read_before_own_write_binds_predecessor(self):
        t1 = Transaction.build("A", ("W", "x"))
        t2 = Transaction.build("B", ("R", "x"), ("W", "x"))
        batch, _ = plan([(t1, None), (t2, None)])
        planned = by_txn(batch)
        assert planned["B"].bindings[0].source_txn == "A"
        assert planned["B"].deps == frozenset({"A"})

    def test_dep_map_and_readers_are_inverse(self):
        t1 = Transaction.build("A", ("W", "x"))
        t2 = Transaction.build("B", ("R", "x"), ("W", "y"))
        t3 = Transaction.build("C", ("R", "y"), ("R", "x"))
        batch, _ = plan([(t1, None), (t2, None), (t3, None)])
        assert batch.dep_map == {
            "A": set(), "B": {"A"}, "C": {"A", "B"},
        }
        assert batch.readers == {"A": {"B", "C"}, "B": {"C"}}

    def test_cascade_closure(self):
        t1 = Transaction.build("A", ("W", "x"))
        t2 = Transaction.build("B", ("R", "x"), ("W", "y"))
        t3 = Transaction.build("C", ("R", "y"))
        t4 = Transaction.build("D", ("R", "z"))
        batch, _ = plan([(t1, None), (t2, None), (t3, None), (t4, None)])
        assert batch.cascade_from({"A"}) == {"A", "B", "C"}
        assert batch.cascade_from({"B"}) == {"B", "C"}
        assert batch.cascade_from({"D"}) == {"D"}


class TestPartitioning:
    def txns(self):
        entities = [f"e{k}" for k in range(12)]
        txns = []
        for i in range(8):
            a, b = entities[i % 12], entities[(i * 5 + 3) % 12]
            txns.append(
                (
                    Transaction.build(
                        f"t{i}", ("R", a), ("R", b), ("W", a), ("W", b)
                    ),
                    None,
                )
            )
        return txns

    def summarize(self, batch):
        return [
            (
                p.txn,
                p.timestamp,
                [(b.step_index, b.source_txn) for b in p.bindings],
                [(s.entity, s.position) for s in p.slots],
                sorted(p.deps, key=repr),
            )
            for p in batch
        ]

    def test_partition_count_does_not_change_the_plan(self):
        reference = None
        for n_shards in (1, 2, 4, 8):
            batch, _ = plan(self.txns(), n_shards=n_shards)
            summary = self.summarize(batch)
            if reference is None:
                reference = summary
            assert summary == reference

    def test_threaded_planning_matches_inline(self):
        inline, _ = plan(self.txns(), n_shards=4, threaded=False)
        threaded, _ = plan(self.txns(), n_shards=4, threaded=True)
        assert self.summarize(inline) == self.summarize(threaded)


class TestGuards:
    def test_refuses_unsettled_placeholders(self):
        t1 = Transaction.build("A", ("W", "x"))
        store = ShardedMultiversionStore(2)
        plan_batch([(t1, None)], store, 0, 0)
        assert store.placeholder_count() == 1
        with pytest.raises(EngineError):
            plan_batch([(t1, None)], store, 1, 1)

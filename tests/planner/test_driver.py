"""The batch planner driver and the execution-mode registry."""

import json

import pytest

from repro.db import Database, RunConfig
from repro.engine.errors import EngineError
from repro.planner import BatchPlanner
from repro.runtime.modes import EXECUTION_MODES
from repro.workloads.bank import transfer_program, transfer_transaction
from repro.workloads.streams import ReadMostlyScenario, ShardedBankScenario


def bank(seed=5):
    return ShardedBankScenario(
        n_shards=4, accounts_per_shard=4, cross_fraction=0.2,
        hot_fraction=0.2, seed=seed,
    )


class TestDriver:
    @pytest.mark.parametrize("deterministic", [True, False])
    def test_bank_stream_commits_everything(self, deterministic):
        scenario = bank()
        planner = BatchPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, deterministic=deterministic,
        )
        metrics = planner.run(scenario.transaction_stream(120))
        assert metrics.committed == metrics.submitted == 120
        assert metrics.cc_aborts == 0
        assert metrics.logic_aborted == 0
        assert metrics.batches == 120 // 16 + 1
        assert scenario.invariant_holds(planner.final_state())
        assert planner.store.placeholder_count() == 0

    def test_partial_final_batch_runs(self):
        scenario = bank()
        planner = BatchPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=1000, deterministic=True,
        )
        metrics = planner.run(scenario.transaction_stream(30))
        assert metrics.committed == 30
        assert metrics.batches == 1

    def test_deterministic_metrics_byte_identical(self):
        dicts = []
        for _ in range(2):
            scenario = bank()
            planner = BatchPlanner(
                initial=scenario.initial_state(), n_workers=4,
                batch_size=32, deterministic=True,
            )
            metrics = planner.run(scenario.transaction_stream(100))
            dicts.append(json.dumps(metrics.as_dict()))
        assert dicts[0] == dicts[1]

    def test_gc_bounds_version_retention(self):
        scenario = bank()
        with_gc = BatchPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, deterministic=True,
        )
        m = with_gc.run(scenario.transaction_stream(200))
        without_gc = BatchPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, deterministic=True, gc_enabled=False,
        )
        n = without_gc.run(scenario.transaction_stream(200))
        assert m.committed == n.committed == 200
        # GC keeps only the per-entity bases; without it every published
        # version is retained.
        assert m.engine.final_versions < n.engine.final_versions
        assert m.engine.gc.versions_pruned > 0
        # Both realize the identical final state.
        assert with_gc.final_state() == without_gc.final_state()

    def test_logic_abort_settles_against_commit_closure(self):
        """With re-execution off, a logic abort still cascades through
        its readers — the pre-reexec baseline, kept comparable."""
        def boom(write_index, reads):
            raise RuntimeError("logic abort")

        stream = [
            (transfer_transaction("t1", "a", "b"), transfer_program(5)),
            (transfer_transaction("t2", "b", "c"), boom),
            (transfer_transaction("t3", "c", "d"), transfer_program(2)),
        ]
        planner = BatchPlanner(
            initial={k: 100 for k in "abcd"}, n_workers=2,
            batch_size=8, deterministic=True, reexecute=False,
        )
        metrics = planner.run(stream)
        assert metrics.committed == 1
        assert metrics.logic_aborted == 1
        assert metrics.cascade_aborted == 1
        assert metrics.reexecuted == 0
        assert metrics.cc_aborts == 0
        state = planner.final_state()
        assert sum(state.values()) == 400
        assert planner.store.placeholder_count() == 0

    def test_logic_abort_reexecutes_readers(self):
        """With re-execution on (the default), the poisoned reader is
        re-bound to the latest surviving version and commits."""
        def boom(write_index, reads):
            raise RuntimeError("logic abort")

        stream = [
            (transfer_transaction("t1", "a", "b"), transfer_program(5)),
            (transfer_transaction("t2", "b", "c"), boom),
            (transfer_transaction("t3", "c", "d"), transfer_program(2)),
        ]
        planner = BatchPlanner(
            initial={k: 100 for k in "abcd"}, n_workers=2,
            batch_size=8, deterministic=True,
        )
        metrics = planner.run(stream)
        assert metrics.committed == 2
        assert metrics.logic_aborted == 1
        assert metrics.cascade_aborted == 0
        assert metrics.reexecuted == 1
        assert metrics.reexec_rounds == 1
        assert metrics.cc_aborts == 0
        state = planner.final_state()
        assert sum(state.values()) == 400
        # t3 re-read c from the initial base: 100 - 2 moved to d.
        assert state["c"] == 98 and state["d"] == 102
        assert planner.store.placeholder_count() == 0

    def test_single_use(self):
        planner = BatchPlanner(n_workers=1, batch_size=4)
        planner.run([])
        with pytest.raises(EngineError):
            planner.run([])

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            BatchPlanner(n_workers=0)
        with pytest.raises(ValueError):
            BatchPlanner(batch_size=0)

    def test_latency_measures_batching_delay(self):
        scenario = bank()
        planner = BatchPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=10, deterministic=True,
        )
        metrics = planner.run(scenario.transaction_stream(10))
        # First admitted waits out the whole batch; last waits one tick.
        assert metrics.latency.max == 10
        assert metrics.latency.min == 1


class TestModesRegistry:
    """The legacy registry view stays in sync with the Database API,
    and mode comparison runs through typed RunConfigs."""

    def test_registry_names(self):
        assert set(EXECUTION_MODES) == {
            "serial", "parallel", "planner", "pipelined",
        }
        assert set(EXECUTION_MODES) == set(Database.backends())

    @pytest.mark.parametrize(
        "mode", ["serial", "parallel", "planner", "pipelined"]
    )
    def test_all_modes_run_the_same_stream(self, mode):
        report = Database().run(
            bank(),
            RunConfig(mode=mode, workers=2, deterministic=True, seed=3),
            txns=60,
        )
        assert report.invariant_ok
        assert report.committed > 0
        assert isinstance(report.as_dict(), dict)

    def test_planner_mode_on_read_mostly(self):
        scenario = ReadMostlyScenario(n_shards=4, seed=2)
        report = Database().run(
            scenario,
            RunConfig(mode="planner", workers=4, batch_size=32),
            txns=80,
        )
        assert report.committed == 80
        assert report.cc_aborts == 0
        assert report.invariant_ok

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            RunConfig(mode="quantum")

"""The execution phase: abort-free runs, publish-at-commit, poison."""

import random

import pytest

from repro.engine.errors import EngineError
from repro.model.transactions import Transaction
from repro.planner.executor import (
    CASCADE,
    COMMITTED,
    LOGIC_ABORT,
    PlanExecutor,
    verify_settled,
)
from repro.planner.planning import plan_batch
from repro.storage.executor import execute_serial
from repro.storage.sharded import ShardedMultiversionStore
from repro.workloads.bank import transfer_program, transfer_transaction


def run_batch(items, n_workers=2, deterministic=True, initial=None):
    store = ShardedMultiversionStore(n_workers, initial or {})
    plan = plan_batch(items, store, 0, 0)
    executor = PlanExecutor(store, n_workers, deterministic)
    outcome = executor.execute(plan)
    verify_settled(plan, outcome)
    return plan, outcome, store


class TestHappyPath:
    def test_transfers_compute_and_publish(self):
        items = [
            (transfer_transaction("t1", "a", "b"), transfer_program(5)),
            (transfer_transaction("t2", "b", "c"), transfer_program(7)),
        ]
        _, outcome, store = run_batch(
            items, initial={"a": 100, "b": 100, "c": 100}
        )
        assert outcome.fates == {"t1": COMMITTED, "t2": COMMITTED}
        assert store.final_state() == {"a": 95, "b": 98, "c": 107}
        assert store.placeholder_count() == 0

    def test_herbrand_matches_serial_execution(self):
        """The plan realizes exactly the serial execution in timestamp
        order — the planner's serializability witness, checked on random
        transaction systems under Herbrand semantics."""
        rng = random.Random(7)
        entities = ["x", "y", "z"]
        for _ in range(25):
            txns = []
            for i in range(4):
                steps = [
                    (rng.choice("RW"), rng.choice(entities))
                    for _ in range(rng.randint(1, 4))
                ]
                txns.append(Transaction.build(f"t{i}", *steps))
            items = [(t, None) for t in txns]
            _, outcome, store = run_batch(items, n_workers=3)
            assert set(outcome.fates.values()) == {COMMITTED}
            from repro.model.schedules import Schedule
            serial = execute_serial(
                Schedule.serial([t for t in txns]),
                [t.txn for t in txns],
            )
            assert store.final_state() == serial.final_state

    def test_threaded_matches_deterministic(self):
        items = [
            (transfer_transaction(f"t{k}", f"a{k % 3}", f"a{(k + 1) % 3}"),
             transfer_program(k))
            for k in range(1, 20)
        ]
        initial = {f"a{k}": 100 for k in range(3)}
        _, _, det_store = run_batch(
            items, n_workers=4, deterministic=True, initial=initial
        )
        _, thr_outcome, thr_store = run_batch(
            items, n_workers=4, deterministic=False, initial=initial
        )
        assert set(thr_outcome.fates.values()) == {COMMITTED}
        assert det_store.final_state() == thr_store.final_state()


class TestPoison:
    def boom(self, write_index, reads):
        raise RuntimeError("logic abort")

    def test_logic_abort_poisons_and_publishes_nothing(self):
        items = [
            (transfer_transaction("t1", "a", "b"), self.boom),
        ]
        _, outcome, store = run_batch(items, initial={"a": 100, "b": 100})
        assert outcome.fates == {"t1": LOGIC_ABORT}
        # Nothing published: balances still base, slots still poisoned.
        assert store.final_state() == {"a": 100, "b": 100}
        assert store.placeholder_count() == 2

    def test_cascade_follows_planned_dependencies(self):
        items = [
            (transfer_transaction("t1", "a", "b"), self.boom),
            (transfer_transaction("t2", "b", "c"), transfer_program(3)),
            (transfer_transaction("t3", "d", "e"), transfer_program(4)),
        ]
        plan, outcome, store = run_batch(
            items,
            initial={k: 100 for k in "abcde"},
        )
        assert outcome.fates["t1"] == LOGIC_ABORT
        assert outcome.fates["t2"] == CASCADE  # read b from t1
        assert outcome.fates["t3"] == COMMITTED  # untouched by the poison
        assert plan.cascade_from({"t1"}) == {"t1", "t2"}
        state = store.final_state()
        assert state["d"] == 96 and state["e"] == 104
        assert state["a"] == 100 and state["b"] == 100 and state["c"] == 100

    def test_threaded_cascade(self):
        items = [
            (transfer_transaction("t1", "a", "b"), self.boom),
            (transfer_transaction("t2", "b", "c"), transfer_program(3)),
        ]
        _, outcome, _ = run_batch(
            items, n_workers=4, deterministic=False,
            initial={"a": 100, "b": 100, "c": 100},
        )
        assert outcome.fates["t1"] == LOGIC_ABORT
        assert outcome.fates["t2"] == CASCADE

    def test_verify_settled_rejects_impossible_commit(self):
        items = [
            (transfer_transaction("t1", "a", "b"), self.boom),
            (transfer_transaction("t2", "b", "c"), transfer_program(3)),
        ]
        store = ShardedMultiversionStore(2, {k: 100 for k in "abc"})
        plan = plan_batch(items, store, 0, 0)
        outcome = PlanExecutor(store, 2, True).execute(plan)
        # Forge a fate that violates the dependency plan.
        outcome.fates["t2"] = COMMITTED
        with pytest.raises(EngineError):
            verify_settled(plan, outcome)


class TestGuards:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            PlanExecutor(ShardedMultiversionStore(1), 0)

    def test_threaded_worker_crash_surfaces_instead_of_hanging(self):
        """An executor bug in a threaded worker must raise after the
        join (with parked readers poisoned awake), never hang."""
        items = [
            (transfer_transaction("t1", "a", "b"), transfer_program(1)),
            (transfer_transaction("t2", "b", "c"), transfer_program(2)),
        ]
        store = ShardedMultiversionStore(2, {k: 100 for k in "abc"})
        plan = plan_batch(items, store, 0, 0)
        executor = PlanExecutor(store, 2, deterministic=False)
        original = executor._run_one

        def sabotaged(ptxn, locked):
            if ptxn.txn == "t1":
                raise KeyError("injected executor bug")
            return original(ptxn, locked)

        executor._run_one = sabotaged
        with pytest.raises(EngineError, match="worker crashed"):
            executor.execute(plan)
        # The crashed transaction's slots were poisoned, so a reader
        # parked on them cascaded rather than blocking forever.
        assert all(not slot.materialized for slot in plan.planned[0].slots)

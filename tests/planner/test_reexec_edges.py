"""Re-binding edge cases: where ``latest_before`` must land.

Directed regressions for the corners of the re-execution fixpoint
(:mod:`repro.planner.reexec`): a poisoned chain *head* (nothing earlier
in the batch — the replacement is the pre-batch base), chained poisons
(a re-executed reader that re-aborts, poisoning the next), a removed
source whose replacement is a *previous batch's* committed version, and
the pipelined interaction with GC pins (re-binding must never address a
pruned version).
"""

import pytest

from repro.planner import BatchPlanner, PipelinedPlanner
from repro.workloads.bank import transfer_program, transfer_transaction
from repro.workloads.streams import AbortHeavyScenario


def boom(write_index, reads):
    raise RuntimeError("logic abort")


def guarded(amount, floor):
    """Aborts unless the source balance stays above ``floor``."""

    def program(write_index, reads):
        if reads[0] - amount < floor:
            raise RuntimeError("guard")
        return transfer_program(amount)(write_index, reads)

    return program


def run_planner(stream, *, initial, batch_size=8, **options):
    planner = BatchPlanner(
        initial=initial, n_workers=2, batch_size=batch_size,
        deterministic=True, **options,
    )
    metrics = planner.run(stream)
    return planner, metrics


class TestChainHeadPoison:
    def test_reader_falls_back_to_pre_batch_base(self):
        # t1 is the chain head for a and b — nothing earlier in the
        # batch, so t2's re-bound read must land on the initial base.
        stream = [
            (transfer_transaction("t1", "a", "b"), boom),
            (transfer_transaction("t2", "b", "c"), transfer_program(5)),
        ]
        planner, metrics = run_planner(
            stream, initial={k: 100 for k in "abc"}
        )
        assert metrics.committed == 1
        assert metrics.logic_aborted == 1
        assert metrics.cascade_aborted == 0
        assert metrics.reexecuted == 1 and metrics.reexec_rounds == 1
        state = planner.final_state()
        # t2 re-read b = 100 (the base), not t1's poisoned write.
        assert state["b"] == 95 and state["c"] == 105
        assert state["a"] == 100
        assert planner.store.placeholder_count() == 0


class TestChainedPoisons:
    def test_reexecuted_reader_that_reaborts_poisons_the_next(self):
        # t1 aborts; t2 re-binds to base b=100, re-runs, and *re-aborts*
        # (its guard needs 200) — poisoning t3 again, which must then
        # re-bind past t2 to the base and commit.  Two fixpoint rounds.
        stream = [
            (transfer_transaction("t1", "a", "b"), boom),
            (transfer_transaction("t2", "b", "c"), guarded(5, 200)),
            (transfer_transaction("t3", "c", "d"), transfer_program(2)),
        ]
        planner, metrics = run_planner(
            stream, initial={k: 100 for k in "abcd"}
        )
        assert metrics.committed == 1
        assert metrics.logic_aborted == 2
        assert metrics.cascade_aborted == 0
        # Round 1 re-runs t2 and t3; t2 re-aborts, round 2 re-runs t3.
        assert metrics.reexecuted == 3
        assert metrics.reexec_rounds == 2
        state = planner.final_state()
        assert state == {"a": 100, "b": 100, "c": 98, "d": 102}
        assert planner.store.placeholder_count() == 0

    def test_guard_that_passes_after_rebind_commits(self):
        # The mirror image: t2's guard *fails* against t1's planned
        # write but *passes* against the base it is re-bound to.
        stream = [
            # t1 would drain b to 0; its own abort saves t2.
            (transfer_transaction("t1", "b", "a"), boom),
            (transfer_transaction("t2", "b", "c"), guarded(5, 90)),
        ]
        planner, metrics = run_planner(
            stream, initial={k: 100 for k in "abc"}
        )
        assert metrics.committed == 1
        assert metrics.reexecuted == 1
        assert planner.final_state()["c"] == 105


class TestCrossBatchRebind:
    def test_replacement_is_previous_batch_committed_version(self):
        # Batch 1 commits t1 (c -> b) leaving c = 95.  In batch 2, t2
        # poisons c and t3 reads it: the re-bound source must be t1's
        # *committed batch-1 version* (95), not the initial 100.
        stream = [
            (transfer_transaction("t1", "c", "b"), transfer_program(5)),
            (transfer_transaction("tf", "e", "f"), transfer_program(1)),
            (transfer_transaction("t2", "b", "c"), boom),
            (transfer_transaction("t3", "c", "d"), transfer_program(2)),
        ]
        initial = {k: 100 for k in "abcdef"}
        planner, metrics = run_planner(
            stream, initial=initial, batch_size=2,
        )
        assert metrics.committed == 3
        assert metrics.reexecuted == 1
        # Untouched entities keep their base; overlay for a total sum.
        state = {**initial, **planner.final_state()}
        assert state["c"] == 93  # 95 from batch 1, minus t3's 2
        assert state["d"] == 102
        assert sum(state.values()) == 600

    def test_multi_batch_conservation_under_pressure(self):
        scenario = AbortHeavyScenario(
            n_shards=2, accounts_per_shard=4, abort_fraction=0.3,
            cross_fraction=0.3, seed=9,
        )
        planner = BatchPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=8, deterministic=True,
        )
        metrics = planner.run(scenario.transaction_stream(80))
        assert metrics.reexecuted > 0
        assert metrics.cascade_aborted == 0
        assert metrics.cc_aborts == 0
        assert scenario.invariant_holds(planner.final_state())
        assert planner.store.placeholder_count() == 0


class TestPipelinedGCPins:
    """Re-binding in flight: lookahead plans pin their read sources, so
    ``latest_before`` during re-execution can never land on a pruned
    version — the run stays equal to the unpruned one."""

    @pytest.mark.parametrize("gc_enabled", [True, False])
    def test_gc_on_off_realize_the_same_run(self, gc_enabled):
        scenario = AbortHeavyScenario(
            n_shards=2, accounts_per_shard=4, abort_fraction=0.3,
            cross_fraction=0.3, seed=13,
        )
        pipelined = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=4, lookahead=3, deterministic=True,
            gc_enabled=gc_enabled,
        )
        metrics = pipelined.run(scenario.transaction_stream(100))
        assert metrics.reexecuted > 0
        assert metrics.cascade_aborted == 0
        assert scenario.invariant_holds(pipelined.final_state())
        if gc_enabled:
            assert metrics.engine.gc.versions_pruned > 0
        if not hasattr(self, "_states"):
            type(self)._states = {}
        self._states[gc_enabled] = (
            metrics.committed, pipelined.final_state()
        )
        if len(self._states) == 2:
            assert self._states[True] == self._states[False]

    def test_pipelined_matches_batch_planner(self):
        scenario = AbortHeavyScenario(
            n_shards=2, accounts_per_shard=4, abort_fraction=0.25,
            cross_fraction=0.3, seed=21,
        )
        batch = BatchPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=4, deterministic=True,
        )
        batch_metrics = batch.run(scenario.transaction_stream(100))
        pipe = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=4, lookahead=3, deterministic=True,
        )
        pipe_metrics = pipe.run(scenario.transaction_stream(100))
        assert pipe_metrics.committed == batch_metrics.committed
        assert pipe_metrics.reexecuted > 0
        assert pipe.final_state() == batch.final_state()

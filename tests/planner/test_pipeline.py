"""The pipelined planner: stage overlap without plan drift.

Pins the seam contracts of :mod:`repro.planner.pipeline`: the pipelined
plan is the sequential planner's plan (byte-identical deterministic
metrics, structurally equal plans), aborts re-bind only the affected
bindings, GC pins keep bound read sources alive, and the lookahead=1
single-batch degenerate case *is* the sequential planner.
"""

import json

import pytest

import repro.planner.driver as driver_mod
import repro.planner.pipeline as pipeline_mod
from repro.db import Database, RunConfig
from repro.engine.errors import EngineError
from repro.planner import BatchPlanner, PipelinedPlanner
from repro.workloads.bank import transfer_program, transfer_transaction
from repro.workloads.streams import ReadMostlyScenario, ShardedBankScenario


def bank(seed=5):
    return ShardedBankScenario(
        n_shards=4, accounts_per_shard=4, cross_fraction=0.2,
        hot_fraction=0.2, seed=seed,
    )


def read_mostly(seed=2):
    return ReadMostlyScenario(
        n_shards=4, accounts_per_shard=4, read_fraction=0.8,
        hot_fraction=0.5, seed=seed,
    )


def boom(write_index, reads):
    raise RuntimeError("logic abort")


def abort_stream():
    """t2 aborts in batch 1; batch 2 reads both its slots (re-bind) and
    a committed slot of t1 (no re-bind).  batch_size=2 splits here."""
    return [
        (transfer_transaction("t1", "a", "b"), transfer_program(5)),
        (transfer_transaction("t2", "b", "c"), boom),
        (transfer_transaction("t3", "c", "d"), transfer_program(2)),
        (transfer_transaction("t4", "a", "b"), transfer_program(1)),
    ]


def plan_signature(plan):
    """A store-independent structural summary of a (settled) plan."""
    return [
        (
            ptxn.txn,
            ptxn.timestamp,
            tuple((s.entity, s.position) for s in ptxn.slots),
            tuple(sorted(ptxn.deps)),
            tuple(
                (
                    b.step_index,
                    b.source_txn,
                    b.source.entity,
                    b.source.position,
                )
                for b in ptxn.bindings
            ),
        )
        for ptxn in plan
    ]


def capture_plans(monkeypatch, module):
    """Record every BatchPlan a driver module produces (by reference, so
    later re-binds are visible in the recorded plans)."""
    recorded = []
    original = module.plan_batch

    def recording(*args, **kwargs):
        plan = original(*args, **kwargs)
        recorded.append(plan)
        return plan

    monkeypatch.setattr(module, "plan_batch", recording)
    return recorded


class TestPlanEquivalence:
    """Pipelining changes when planning happens, never what is planned."""

    @pytest.mark.parametrize("lookahead", [1, 2, 3])
    def test_deterministic_metrics_identical_to_sequential(
        self, lookahead
    ):
        scenario = bank()
        seq = BatchPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, deterministic=True,
        )
        m_seq = seq.run(scenario.transaction_stream(120))
        scenario = bank()
        pipe = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, lookahead=lookahead, deterministic=True,
        )
        m_pipe = pipe.run(scenario.transaction_stream(120))
        assert json.dumps(m_seq.as_dict()) == json.dumps(m_pipe.as_dict())
        assert seq.final_state() == pipe.final_state()

    @pytest.mark.parametrize("deterministic", [True, False])
    def test_plans_structurally_equal_to_sequential(
        self, monkeypatch, deterministic
    ):
        seq_plans = capture_plans(monkeypatch, driver_mod)
        pipe_plans = capture_plans(monkeypatch, pipeline_mod)
        scenario = bank(seed=9)
        seq = BatchPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, deterministic=True,
        )
        seq.run(scenario.transaction_stream(100))
        scenario = bank(seed=9)
        pipe = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, lookahead=2, deterministic=deterministic,
        )
        pipe.run(scenario.transaction_stream(100))
        assert len(seq_plans) == len(pipe_plans) > 1
        for sp, pp in zip(seq_plans, pipe_plans):
            assert plan_signature(sp) == plan_signature(pp)

    def test_plans_equal_across_batch_boundary_aborts(self, monkeypatch):
        """Re-binding repairs the pipelined plan into exactly the plan
        the sequential planner builds against the settled store."""
        seq_plans = capture_plans(monkeypatch, driver_mod)
        pipe_plans = capture_plans(monkeypatch, pipeline_mod)
        initial = {k: 100 for k in "abcd"}
        seq = BatchPlanner(
            initial=initial, n_workers=2, batch_size=2,
            deterministic=True,
        )
        m_seq = seq.run(abort_stream())
        pipe = PipelinedPlanner(
            initial=initial, n_workers=2, batch_size=2,
            deterministic=True,
        )
        m_pipe = pipe.run(abort_stream())
        for sp, pp in zip(seq_plans, pipe_plans):
            assert plan_signature(sp) == plan_signature(pp)
        assert json.dumps(m_seq.as_dict()) == json.dumps(m_pipe.as_dict())
        assert m_pipe.rebound_reads > 0  # the seam was actually exercised
        assert seq.final_state() == pipe.final_state()

    def test_threaded_matches_deterministic(self):
        scenario = read_mostly()
        det = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, lookahead=2, deterministic=True,
        )
        m_det = det.run(scenario.transaction_stream(120))
        scenario = read_mostly()
        thr = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, lookahead=2, deterministic=False,
        )
        m_thr = thr.run(scenario.transaction_stream(120))
        assert det.final_state() == thr.final_state()
        # Same plan shape in both modes; only wall-clock may differ.
        for name in (
            "placeholders_reserved", "base_reads", "own_reads",
            "dependent_reads", "commit_deps", "cross_batch_reads",
            "rebound_reads", "committed",
        ):
            assert getattr(m_det, name) == getattr(m_thr, name), name


class TestSeam:
    @pytest.mark.parametrize("deterministic", [True, False])
    @pytest.mark.parametrize("lookahead", [1, 2])
    def test_abort_rebinds_instead_of_cascading(
        self, deterministic, lookahead
    ):
        pipe = PipelinedPlanner(
            initial={k: 100 for k in "abcd"}, n_workers=2,
            batch_size=2, lookahead=lookahead,
            deterministic=deterministic,
        )
        m = pipe.run(abort_stream())
        # t3/t4 were planned against t2's reserved slots, but t2's abort
        # re-binds them to surviving state: they commit, no cross-batch
        # cascade exists by construction.
        assert m.committed == 3
        assert m.logic_aborted == 1
        assert m.cascade_aborted == 0
        assert m.rebound_reads == 2
        assert m.cc_aborts == 0
        assert sum(pipe.final_state().values()) == 400
        assert pipe.store.placeholder_count() == 0

    def test_rebound_read_binds_to_committed_survivor(self):
        """t4's read of b re-binds to t1's *filled* slot (same settled
        batch), not all the way back to the pre-batch base."""
        pipe = PipelinedPlanner(
            initial={k: 100 for k in "abcd"}, n_workers=2,
            batch_size=2, deterministic=True,
        )
        pipe.run(abort_stream())
        state = pipe.final_state()
        # t1 moved 5 a->b, then t4 moved 1 a->b on top of t1's balance.
        assert state["a"] == 94 and state["b"] == 106

    def test_cross_batch_reads_counted(self):
        scenario = bank()
        pipe = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=8, deterministic=True,
        )
        m = pipe.run(scenario.transaction_stream(80))
        # With 10 batches over 16 hot accounts, later batches must bind
        # base reads to earlier batches' reserved slots.
        assert m.cross_batch_reads > 0
        assert m.committed == 80

    def test_single_batch_degenerates_to_sequential(self):
        """lookahead=1 with one batch: nothing is ever in flight during
        execution — the run is the sequential planner stage for stage."""
        scenario = bank()
        seq = BatchPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=1000, deterministic=True,
        )
        m_seq = seq.run(scenario.transaction_stream(30))
        scenario = bank()
        pipe = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=1000, lookahead=1, deterministic=True,
        )
        m_pipe = pipe.run(scenario.transaction_stream(30))
        assert m_pipe.batches == 1
        assert m_pipe.cross_batch_reads == m_pipe.rebound_reads == 0
        assert json.dumps(m_seq.as_dict()) == json.dumps(m_pipe.as_dict())
        assert seq.final_state() == pipe.final_state()


class TestDriverContract:
    def test_single_use(self):
        pipe = PipelinedPlanner(n_workers=1, batch_size=4)
        pipe.run([])
        with pytest.raises(EngineError):
            pipe.run([])

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            PipelinedPlanner(n_workers=0)
        with pytest.raises(ValueError):
            PipelinedPlanner(batch_size=0)
        with pytest.raises(ValueError):
            PipelinedPlanner(lookahead=0)

    @pytest.mark.parametrize("deterministic", [True, False])
    def test_stream_errors_propagate_from_the_planning_stage(
        self, deterministic
    ):
        """A stream iterator raising mid-run fails the run — in threaded
        mode the error crosses back from the background planning thread
        instead of silently truncating the stream."""

        def broken_stream():
            yield from abort_stream()[:3]
            raise IOError("stream source died")

        pipe = PipelinedPlanner(
            initial={k: 100 for k in "abcd"}, n_workers=2,
            batch_size=2, deterministic=deterministic,
        )
        with pytest.raises(IOError, match="stream source died"):
            pipe.run(broken_stream())

    def test_latency_identical_to_sequential_accounting(self):
        """Admission/settle ticks replicate the sequential driver's, so
        batching-delay latency is pipeline-invariant."""
        scenario = bank()
        pipe = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=2,
            batch_size=10, deterministic=True,
        )
        m = pipe.run(scenario.transaction_stream(10))
        assert m.latency.max == 10
        assert m.latency.min == 1

    def test_gc_bounds_version_retention(self):
        scenario = bank()
        with_gc = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, lookahead=2, deterministic=True,
        )
        m = with_gc.run(scenario.transaction_stream(200))
        without_gc = PipelinedPlanner(
            initial=scenario.initial_state(), n_workers=4,
            batch_size=16, lookahead=2, deterministic=True,
            gc_enabled=False,
        )
        n = without_gc.run(scenario.transaction_stream(200))
        assert m.committed == n.committed == 200
        assert m.engine.final_versions < n.engine.final_versions
        assert m.engine.gc.versions_pruned > 0
        assert with_gc.final_state() == without_gc.final_state()

    @pytest.mark.parametrize("deterministic", [True, False])
    def test_database_api_run(self, deterministic):
        report = Database().run(
            "read-mostly",
            RunConfig(
                mode="pipelined", workers=4, lookahead=2,
                deterministic=deterministic, seed=7,
            ),
            txns=120,
        )
        assert report.committed == 120
        assert report.cc_aborts == 0
        assert report.invariant_ok
        assert report.metrics.lookahead == 2

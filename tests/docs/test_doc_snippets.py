"""Execute every ```python fenced block in README.md and docs/*.md.

The pre-PR-4 README quickstart drifted from the API until a test ran
it; this runner makes that structural for the whole docs tree: every
Python code block must execute (imports resolve, assertions hold) or
CI fails.  Each block runs in its own subprocess so snippets that
mutate process-global state — registering a demo backend, say — cannot
leak into the test session or each other, and each block must be
self-contained (documentation readers start from zero context too).

Shell blocks (```sh) and plain fences are out of scope: they are
command transcripts, not API claims.
"""

import pathlib
import re
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

#: a fenced python block: ```python ... ``` (tilde fences unused here).
_BLOCK = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def doc_files():
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def snippets():
    found = []
    for path in doc_files():
        for index, match in enumerate(_BLOCK.finditer(path.read_text())):
            name = f"{path.relative_to(REPO_ROOT)}#{index}"
            found.append(pytest.param(path, match.group(1), id=name))
    return found


def test_docs_exist_and_carry_snippets():
    """The docs tree this runner guards is actually there."""
    names = {p.name for p in doc_files()}
    assert {
        "README.md", "paper-map.md", "backend-authors.md",
        "execution-modes.md", "observability.md", "benchmarks.md",
        "static-analysis.md",
    } <= names
    assert len(snippets()) >= 5


@pytest.mark.parametrize("path, code", snippets())
def test_doc_snippet_executes(path, code):
    env = {
        "PYTHONPATH": str(SRC),
        # Windows-less CI containers still want a minimal env for
        # subprocess + threading to behave; inherit nothing secret.
        "PATH": "/usr/bin:/bin",
    }
    result = subprocess.run(
        [sys.executable, "-"],
        input=code,
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"snippet in {path.name} failed\n"
        f"--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )

"""Theorem 5: the forced-read schedule is MVSR iff the polygraph is acyclic."""

import random

import pytest

from repro.classes.mvsr import is_mvsr
from repro.graphs.polygraph import Polygraph, random_polygraph
from repro.model.schedules import T_INIT
from repro.ols.decision import prefix_signatures
from repro.reductions.theorem5 import theorem5_schedule
from repro.schedulers.maximal import MaximalOracleScheduler


def _eligible_polygraphs(n: int, seed: int):
    rng = random.Random(seed)
    produced = 0
    while produced < n:
        poly = random_polygraph(
            rng.randint(3, 5), rng.randint(1, 4), rng.randint(1, 3), rng
        ).ensure_property_a()
        if poly.satisfies_theorem4_assumptions():
            produced += 1
            yield poly


class TestConstruction:
    def test_rejects_assumption_violations(self):
        poly = Polygraph.of(nodes=[1, 2], arcs=[(1, 2)])
        with pytest.raises(ValueError):
            theorem5_schedule(poly)

    def test_read_froms_forced(self):
        """Corollary 1's precondition: a unique signature across all
        serializations (checked on acyclic instances)."""
        for poly in _eligible_polygraphs(6, seed=0):
            if not poly.is_acyclic():
                continue
            s = theorem5_schedule(poly)
            signatures = prefix_signatures(s, len(s))
            assert len(signatures) == 1, poly

    def test_forced_sources_match_paper(self):
        poly = Polygraph.of(nodes=[0, 1, 2])
        poly.add_choice(1, 2, 0)
        s = theorem5_schedule(poly)
        (signature,) = prefix_signatures(s, len(s))
        by_position = dict(signature)
        for position, source in by_position.items():
            step = s[position]
            if step.entity.startswith("a["):
                assert source == T_INIT  # R_i(a) reads from T0
            else:
                assert source == 0  # R_j(b), R_j(b') read from T_i


class TestEquivalence:
    def test_mvsr_iff_acyclic(self):
        for poly in _eligible_polygraphs(20, seed=1):
            s = theorem5_schedule(poly)
            assert is_mvsr(s) == poly.is_acyclic(), poly

    def test_cyclic_instance_rejected(self):
        poly = Polygraph.of(nodes=[0, 1, 2], arcs=[(2, 1), (0, 2)])
        poly.add_choice(1, 2, 0)
        poly = poly.ensure_property_a()
        s = theorem5_schedule(poly)
        assert not poly.is_acyclic()
        assert not is_mvsr(s)


class TestMaximalSchedulerAcceptance:
    """Corollary 1: schedules with forced read-froms are accepted by all
    maximal multiversion schedulers iff they are MVSR."""

    def test_oracle_accepts_iff_acyclic(self):
        for poly in _eligible_polygraphs(8, seed=2):
            s = theorem5_schedule(poly)
            scheduler = MaximalOracleScheduler(s.transaction_system())
            assert scheduler.accepts(s) == poly.is_acyclic(), poly

    def test_oracle_version_function_on_accept(self):
        for poly in _eligible_polygraphs(4, seed=3):
            if not poly.is_acyclic():
                continue
            s = theorem5_schedule(poly)
            scheduler = MaximalOracleScheduler(s.transaction_system())
            assert scheduler.accepts(s)
            vf = scheduler.version_function()
            vf.validate(s)

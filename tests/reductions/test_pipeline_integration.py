"""End-to-end: SAT formula -> polygraph -> Theorems 4/5/6 -> decisions.

The complete NP-hardness pipeline on one satisfiable and one
unsatisfiable seed formula, every stage checked against every other.
These instances have ~20 transactions and ~100-200 steps; they are
tractable only because the deciders search the choice space rather than
the order space (see repro.classes.mvsr.is_mvsr_fixed).
"""

import pytest

from repro.classes.mvcsr import is_mvcsr
from repro.classes.mvsr import is_mvsr
from repro.ols.decision import is_ols
from repro.reductions.sat_to_polygraph import monotone_sat_to_polygraph
from repro.reductions.theorem4 import theorem4_schedules
from repro.reductions.theorem5 import theorem5_schedule
from repro.reductions.theorem6 import theorem6_adaptive_construction
from repro.sat.brute import solve_bruteforce
from repro.sat.cnf import CNF, neg, pos
from repro.schedulers.maximal import MaximalOracleScheduler
from repro.schedulers.mvto import MVTOScheduler

SAT_SEED = CNF([(pos("a"), pos("b")), (neg("a"), neg("b"))])
UNSAT_SEED = CNF([(pos("a"), pos("a")), (neg("a"), neg("a"))])


@pytest.fixture(scope="module", params=["sat", "unsat"])
def pipeline(request):
    formula = SAT_SEED if request.param == "sat" else UNSAT_SEED
    satisfiable = solve_bruteforce(formula) is not None
    sat_poly = monotone_sat_to_polygraph(formula)
    normalized = sat_poly.polygraph.ensure_property_a()
    return request.param, formula, satisfiable, sat_poly, normalized


class TestPipeline:
    def test_polygraph_tracks_satisfiability(self, pipeline):
        _name, _f, satisfiable, sat_poly, _norm = pipeline
        assert sat_poly.polygraph.is_acyclic() == satisfiable

    def test_normalization_preserves_acyclicity(self, pipeline):
        _name, _f, satisfiable, _sp, normalized = pipeline
        assert normalized.has_property_a()
        assert normalized.is_acyclic() == satisfiable

    def test_theorem4_at_scale(self, pipeline):
        _name, _f, satisfiable, _sp, normalized = pipeline
        s1, s2 = theorem4_schedules(normalized)
        assert is_mvcsr(s1) and is_mvcsr(s2)
        assert is_ols([s1, s2]) == satisfiable

    def test_theorem5_at_scale(self, pipeline):
        _name, _f, satisfiable, _sp, normalized = pipeline
        s = theorem5_schedule(normalized)
        assert is_mvsr(s) == satisfiable

    def test_theorem6_at_scale(self, pipeline):
        _name, _f, satisfiable, sat_poly, _norm = pipeline
        result = theorem6_adaptive_construction(
            sat_poly.polygraph, MVTOScheduler
        )
        assert is_mvcsr(result.schedule)
        # Soundness for the efficient scheduler; exactness for the oracle.
        if result.accepted:
            assert satisfiable
        oracle = MaximalOracleScheduler(
            result.schedule.transaction_system()
        )
        assert oracle.accepts(result.schedule) == satisfiable

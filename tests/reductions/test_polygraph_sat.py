"""Polygraph acyclicity through the SAT encoding."""

import random

from repro.graphs.polygraph import Polygraph, random_polygraph
from repro.reductions.polygraph_sat import (
    polygraph_acyclicity_cnf,
    polygraph_is_acyclic_sat,
)
from repro.sat.solver import solve


class TestEncoding:
    def test_agrees_with_backtracker_random(self):
        rng = random.Random(0)
        for _ in range(120):
            poly = random_polygraph(
                rng.randint(3, 6), rng.randint(1, 5), rng.randint(0, 4), rng
            )
            assert poly.is_acyclic() == polygraph_is_acyclic_sat(poly)

    def test_cyclic_base_arcs_unsat(self):
        poly = Polygraph.of(nodes=[1, 2], arcs=[(1, 2), (2, 1)])
        assert not polygraph_is_acyclic_sat(poly)

    def test_model_induces_topological_order(self):
        poly = Polygraph.of(nodes=[1, 2, 3], arcs=[(3, 2)])
        poly.add_choice(2, 3, 1)
        cnf = polygraph_acyclicity_cnf(poly)
        model = solve(cnf)
        assert model is not None

        def before(u, v):
            a, b = sorted((u, v), key=lambda n: repr(n))
            value = model[("ord", a, b)]
            return value if (u, v) == (a, b) else not value

        # The definitional arc (1, 2) and the base arc (3, 2) hold.
        assert before(1, 2) and before(3, 2)
        # The choice is honored: (2,3) or (3,1).
        assert before(2, 3) or before(3, 1)

"""Theorem 4: {s1, s2} is OLS iff the polygraph is acyclic."""

import random

import pytest

from repro.classes.mvcsr import is_mvcsr, mv_conflict_graph
from repro.graphs.polygraph import Polygraph, random_polygraph
from repro.ols.decision import is_ols
from repro.reductions.theorem4 import theorem4_schedules


def _eligible_polygraphs(n: int, seed: int):
    rng = random.Random(seed)
    produced = 0
    while produced < n:
        poly = random_polygraph(
            rng.randint(3, 5), rng.randint(1, 4), rng.randint(1, 3), rng
        ).ensure_property_a()
        if poly.satisfies_theorem4_assumptions():
            produced += 1
            yield poly


class TestConstruction:
    def test_rejects_assumption_violations(self):
        # An arc with no choice violates property (a).
        poly = Polygraph.of(nodes=[1, 2], arcs=[(1, 2)])
        with pytest.raises(ValueError):
            theorem4_schedules(poly)

    def test_shared_prefix_contains_part_i(self):
        poly = Polygraph.of(nodes=[0, 1, 2])
        poly.add_choice(1, 2, 0)
        s1, s2 = theorem4_schedules(poly)
        lcp = s1.common_prefix_length(s2)
        # Part (i) contributes 3 steps per choice, all shared; the lcp may
        # extend into part (ii) since (ii1) and (ii2) share W_i(b').
        assert lcp >= 3 * len(poly.choices)
        assert s1.prefix(lcp) == s2.prefix(lcp)
        part_i = s1.prefix(3 * len(poly.choices))
        assert all(step.entity.startswith("b[") for step in part_i)

    def test_mvcg_s1_is_arc_graph(self):
        for poly in _eligible_polygraphs(10, seed=1):
            s1, _s2 = theorem4_schedules(poly)
            g = mv_conflict_graph(s1)
            assert set(g.arcs) == set(poly.arcs), poly

    def test_mvcg_s2_is_first_branch_graph(self):
        for poly in _eligible_polygraphs(10, seed=2):
            _s1, s2 = theorem4_schedules(poly)
            g = mv_conflict_graph(s2)
            expected = {(j, k) for (j, k, _i) in poly.choices}
            assert set(g.arcs) == expected, poly

    def test_both_schedules_mvcsr(self):
        """The instances are MVCSR, so the hardness is purely OLS."""
        for poly in _eligible_polygraphs(15, seed=3):
            s1, s2 = theorem4_schedules(poly)
            assert is_mvcsr(s1) and is_mvcsr(s2)


class TestEquivalence:
    def test_ols_iff_acyclic_random(self):
        for poly in _eligible_polygraphs(25, seed=4):
            s1, s2 = theorem4_schedules(poly)
            assert is_ols([s1, s2]) == poly.is_acyclic(), poly

    def test_acyclic_singleton(self):
        poly = Polygraph.of(nodes=[0, 1, 2])
        poly.add_choice(1, 2, 0)
        s1, s2 = theorem4_schedules(poly)
        assert poly.is_acyclic()
        assert is_ols([s1, s2])

    def test_forced_cyclic_pair_not_ols(self):
        # Both branches of the only choice close a cycle.
        poly = Polygraph.of(nodes=[0, 1, 2], arcs=[(2, 1), (0, 2)])
        poly.add_choice(1, 2, 0)
        poly = poly.ensure_property_a()
        assert poly.satisfies_theorem4_assumptions()
        assert not poly.is_acyclic()
        s1, s2 = theorem4_schedules(poly)
        assert not is_ols([s1, s2])

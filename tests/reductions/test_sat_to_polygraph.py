"""The reconstructed monotone-SAT -> polygraph reduction.

Since the original [Papadimitriou 79] gadget is only sketched in the
paper, correctness of the reconstruction is established *empirically*:
exhaustively over all monotone formulas with up to three clauses over
three variables, and on randomized larger instances, against brute-force
SAT.  These tests are the authority for DESIGN.md's substitution note.
"""

import itertools
import random

import pytest

from repro.reductions.sat_to_polygraph import (
    monotone_sat_to_polygraph,
    sat_to_polygraph,
)
from repro.sat.brute import solve_bruteforce
from repro.sat.cnf import CNF, neg, pos


def _exhaustive_monotone_formulas(variables=("a", "b", "c"), max_clauses=2):
    """All monotone formulas with <= max_clauses clauses (width 1-3)."""
    pos_clauses = [
        tuple(pos(v) for v in combo)
        for r in (1, 2, 3)
        for combo in itertools.combinations(variables, r)
    ]
    neg_clauses = [
        tuple(neg(v) for v in combo)
        for r in (1, 2, 3)
        for combo in itertools.combinations(variables, r)
    ]
    all_clauses = pos_clauses + neg_clauses
    for n in range(1, max_clauses + 1):
        for combo in itertools.combinations(all_clauses, n):
            yield CNF(list(combo))


class TestStructuralProperties:
    def test_choices_node_disjoint(self):
        f = CNF([(pos("a"), pos("b")), (neg("a"), neg("b"))])
        poly = monotone_sat_to_polygraph(f).polygraph
        assert poly.choices_node_disjoint()

    def test_first_branches_acyclic(self):
        f = CNF([(pos("a"), pos("b")), (neg("a"), neg("b"))])
        poly = monotone_sat_to_polygraph(f).polygraph
        assert poly.first_branch_graph().is_acyclic()

    def test_arc_graph_acyclic(self):
        rng = random.Random(0)
        for _ in range(50):
            nv = rng.randint(2, 5)
            vs = [f"x{i}" for i in range(nv)]
            clauses = []
            for _ in range(rng.randint(1, 6)):
                width = min(rng.randint(1, 3), nv)
                polarity = rng.random() < 0.5
                clauses.append(
                    tuple((v, polarity) for v in rng.sample(vs, width))
                )
            poly = monotone_sat_to_polygraph(CNF(clauses)).polygraph
            assert poly.arc_graph().is_acyclic()
            poly.validate()

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError):
            monotone_sat_to_polygraph(CNF([(pos("a"), neg("b"))]))

    def test_rejects_wide_clauses(self):
        wide = CNF([tuple(pos(f"v{k}") for k in range(4))])
        with pytest.raises(ValueError):
            monotone_sat_to_polygraph(wide)


class TestCorrectnessExhaustive:
    def test_acyclic_iff_satisfiable(self):
        for f in _exhaustive_monotone_formulas():
            sat = solve_bruteforce(f) is not None
            sp = monotone_sat_to_polygraph(f)
            selection = sp.polygraph.acyclic_selection()
            assert (selection is not None) == sat, str(f)
            if selection is not None:
                assert f.evaluate(sp.decode(selection)), str(f)


class TestCorrectnessRandom:
    def test_acyclic_iff_satisfiable_random(self):
        rng = random.Random(7)
        for _ in range(200):
            nv = rng.randint(2, 5)
            vs = [f"x{i}" for i in range(nv)]
            clauses = []
            for _ in range(rng.randint(1, 6)):
                width = min(rng.randint(1, 3), nv)
                polarity = rng.random() < 0.5
                clauses.append(
                    tuple((v, polarity) for v in rng.sample(vs, width))
                )
            f = CNF(clauses)
            sat = solve_bruteforce(f) is not None
            sp = monotone_sat_to_polygraph(f)
            selection = sp.polygraph.acyclic_selection()
            assert (selection is not None) == sat, str(f)
            if selection is not None:
                assert f.evaluate(sp.decode(selection)), str(f)

    def test_duplicate_literals_collapsed(self):
        f = CNF([(pos("a"), pos("a"), pos("b"))])
        sp = monotone_sat_to_polygraph(f)
        # Two occurrence switches, not three.
        assert len(sp.occurrence_choice) == 2


class TestFullPipeline:
    def test_arbitrary_cnf_through_monotone(self):
        rng = random.Random(9)
        for _ in range(60):
            nv = rng.randint(1, 4)
            vs = [f"v{i}" for i in range(nv)]
            clauses = []
            for _ in range(rng.randint(1, 4)):
                width = rng.randint(1, 3)
                clauses.append(
                    tuple(
                        (rng.choice(vs), rng.random() < 0.5)
                        for _ in range(width)
                    )
                )
            f = CNF(clauses)
            sat = solve_bruteforce(f) is not None
            sp = sat_to_polygraph(f)
            assert sp.polygraph.is_acyclic() == sat, str(f)

    def test_decoded_assignment_projects_to_original(self):
        f = CNF([(pos("p"), neg("q")), (pos("q"), pos("r"))])
        sp = sat_to_polygraph(f)
        selection = sp.polygraph.acyclic_selection()
        assert selection is not None
        mono_assignment = sp.decode(selection)
        projected = {v: mono_assignment[("mono+", v)] for v in f.variables}
        assert f.evaluate(projected)

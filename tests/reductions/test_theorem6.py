"""Theorem 6: the adaptive construction against concrete schedulers."""

import random

import pytest

from repro.classes.mvcsr import is_mvcsr
from repro.graphs.polygraph import Polygraph, random_polygraph
from repro.reductions.sat_to_polygraph import monotone_sat_to_polygraph
from repro.reductions.theorem6 import theorem6_adaptive_construction
from repro.sat.cnf import CNF, neg, pos
from repro.schedulers.maximal import MaximalOracleScheduler
from repro.schedulers.mvcg import EagerMVCGScheduler
from repro.schedulers.mvto import MVTOScheduler


def _disjoint_polygraphs(n: int, seed: int):
    """Random polygraphs with node-disjoint choices (Theorem 6 shape)."""
    rng = random.Random(seed)
    produced = 0
    while produced < n:
        poly = random_polygraph(
            rng.randint(4, 6), rng.randint(1, 4), rng.randint(1, 2), rng
        )
        if (
            poly.choices_node_disjoint()
            and poly.first_branch_graph().is_acyclic()
            and poly.arc_graph().is_acyclic()
            and poly.choices
        ):
            produced += 1
            yield poly


SAT_FORMULA = CNF([(pos("a"), pos("b")), (neg("a"), neg("b"))])
UNSAT_FORMULA = CNF(
    [(pos("a"), pos("a")), (pos("b"), pos("b")), (neg("a"), neg("b"))]
)


class TestConstruction:
    def test_rejects_overlapping_choices(self):
        poly = Polygraph()
        poly.add_choice(2, 3, 1)
        poly.add_choice(3, 4, 5)  # shares node 3
        with pytest.raises(ValueError):
            theorem6_adaptive_construction(poly, MVTOScheduler)

    def test_schedule_is_always_mvcsr(self):
        """MVCG(s) is the arc graph, acyclic by assumption (c)."""
        for poly in _disjoint_polygraphs(8, seed=0):
            result = theorem6_adaptive_construction(poly, MVTOScheduler)
            assert is_mvcsr(result.schedule), poly

    def test_forced_sources_recorded(self):
        for poly in _disjoint_polygraphs(3, seed=1):
            result = theorem6_adaptive_construction(poly, MVTOScheduler)
            assert len(result.forced_sources) == len(poly.choices)
            # Every forced source is the choice's T_i.
            for entity, source in result.forced_sources.items():
                assert f",{source}]" in entity or str(source) in entity


class TestSoundness:
    """Accepting schedulers never accept when the polygraph is cyclic."""

    def test_efficient_schedulers_sound(self):
        for factory in (MVTOScheduler, EagerMVCGScheduler):
            for poly in _disjoint_polygraphs(10, seed=2):
                result = theorem6_adaptive_construction(poly, factory)
                if result.accepted:
                    assert poly.is_acyclic(), (factory.__name__, poly)

    def test_unsat_pipeline_rejected(self):
        sp = monotone_sat_to_polygraph(UNSAT_FORMULA)
        assert not sp.polygraph.is_acyclic()
        for factory in (MVTOScheduler, EagerMVCGScheduler):
            result = theorem6_adaptive_construction(sp.polygraph, factory)
            assert not result.accepted, factory.__name__

    def test_sat_pipeline_oracle_accepts(self):
        """The maximal scheduler accepts the satisfiable instance; the
        efficient schedulers are sound but may reject it — they recognize
        non-maximal classes, which is Theorem 6's content."""
        sp = monotone_sat_to_polygraph(SAT_FORMULA)
        assert sp.polygraph.is_acyclic()
        result = theorem6_adaptive_construction(sp.polygraph, MVTOScheduler)
        oracle = MaximalOracleScheduler(
            result.schedule.transaction_system()
        )
        assert oracle.accepts(result.schedule)
        for factory in (MVTOScheduler, EagerMVCGScheduler):
            outcome = theorem6_adaptive_construction(sp.polygraph, factory)
            if outcome.accepted:
                assert sp.polygraph.is_acyclic()  # soundness either way


class TestMaximality:
    """The maximal oracle accepts iff acyclic; efficient schedulers may
    reject acyclic instances — they recognize non-maximal classes, which
    is Theorem 6's content."""

    def test_oracle_accepts_iff_acyclic(self):
        for poly in _disjoint_polygraphs(6, seed=3):
            # Build the schedule adaptively against MVTO (any driver works
            # for the construction), then judge it with the oracle.
            result = theorem6_adaptive_construction(poly, MVTOScheduler)
            system = result.schedule.transaction_system()
            oracle = MaximalOracleScheduler(system)
            assert oracle.accepts(result.schedule) == poly.is_acyclic(), poly

"""Auditing re-executed schedules: certification and forgery.

Re-execution (:mod:`repro.planner.reexec`) commits transactions whose
reads were re-bound after a logic abort.  The auditor must hold those
runs to the same standard as any other: a traced re-executed run
certifies 1-SR only because every committed read cites the version it
*actually* used after re-binding — so a forged trace where a re-bound
read still cites its removed source must be flagged, never certified.

Negative half: synthetic and mutated traces of the re-execution shape.
Positive half: real abort-heavy runs through both abort-free modes
certify, and equal seeds certify byte-identically.
"""

import json

import pytest

from repro.audit import audit_events, audit_file
from repro.db import Database, RunConfig
from repro.obs import Tracer

from tests.audit.test_clean_runs import run_audited
from tests.audit.test_reconstruct import abort, close, commit, rd, wr


def codes(report):
    return sorted({v.code for v in report.violations})


def run_traced(mode, *, seed=3, txns=80, reexecute=None, path=None):
    tracer = Tracer(capacity=None) if path is None else str(path)
    options = {} if reexecute is None else {"reexecute": reexecute}
    config = RunConfig(
        mode=mode, workers=2, batch_size=8, deterministic=True,
        seed=seed, trace=tracer, **options,
    )
    report = Database().run(
        "abort-heavy", config, txns=txns, abort_fraction=0.3
    )
    return report, tracer


class TestForgedReexecTraces:
    """The negative half: re-execution shapes that must not certify."""

    def test_rebound_read_citing_removed_source(self):
        # The honest story: "a" writes x@1 and logic-aborts; "b" is
        # re-bound to the initial version and commits.  The forged
        # trace claims "b" still read the removed write — position 1
        # no longer exists, so the read's source is missing.
        report = audit_events([
            wr("a", "x", 1), abort("a"),
            rd("b", "x", 1, "a"), commit("b"),
            close(),
        ])
        assert not report.ok
        assert codes(report) == ["read-from-aborted"]

    def test_rebound_read_citing_stale_writer(self):
        # Here the re-bound read cites the *surviving* position but
        # still names the aborted transaction as its writer — a
        # re-binding that updated the slot but not the source label.
        report = audit_events([
            wr("c", "x", 1), commit("c"),
            wr("a", "x", 2, seq=0), abort("a", seq=0),
            rd("b", "x", 1, "a"), commit("b"),
            close(),
        ])
        assert not report.ok
        assert "read-from-mismatch" in codes(report)

    def test_mutated_real_reexec_trace(self, tmp_path):
        """Take a genuinely re-executed run and forge one re-bound
        read back to its pre-rebind source: the audit must flag it."""
        path = tmp_path / "reexec.jsonl"
        report, _ = run_traced("planner", path=path)
        assert report.invariant_ok
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        reexecuted = {
            r["args"]["txn"] for r in records
            if r.get("name") == "txn.reexec"
        }
        assert reexecuted, "run produced no re-executions"
        aborted = {
            r["args"]["txn"] for r in records
            if r.get("name") == "txn.abort"
        }
        for i, record in enumerate(records):
            if (record.get("name") == "txn.read"
                    and record["args"]["txn"] in reexecuted
                    and record["args"].get("pos") is not None):
                record["args"]["writer"] = sorted(aborted)[0]
                lines[i] = json.dumps(record)
                break
        else:
            pytest.fail("no in-batch read by a re-executed txn to forge")
        forged = tmp_path / "forged.jsonl"
        forged.write_text("\n".join(lines) + "\n")
        audit = audit_file(str(forged))
        assert not audit.ok
        assert set(codes(audit)) & {
            "read-from-mismatch", "read-from-aborted"
        }

    def test_untouched_reexec_trace_certifies(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        report, _ = run_traced("pipelined", path=path)
        assert report.invariant_ok
        audit = audit_file(str(path))
        assert audit.ok, audit.format()
        assert audit.certified == audit.segments > 0


class TestReexecRunsCertify:
    """The positive half: re-executed runs pass continuous audit."""

    @pytest.mark.parametrize("mode", ["planner", "pipelined"])
    def test_abort_heavy_certifies_1sr(self, mode):
        report = run_audited(
            mode, "abort-heavy", txns=80, batch_size=8,
        )
        audit = report.audit
        assert audit is not None and audit.ok, audit.format()
        assert audit.violations == ()
        assert report.mode_specific["reexecuted"] > 0
        assert report.mode_specific["cascade_aborted"] == 0
        assert report.cc_aborts == 0

    @pytest.mark.parametrize("mode", ["planner", "pipelined"])
    def test_equal_seeds_certify_byte_identically(self, mode):
        first = run_audited(mode, "abort-heavy", seed=11, batch_size=8)
        second = run_audited(mode, "abort-heavy", seed=11, batch_size=8)
        assert first.audit.as_json() == second.audit.as_json()
        assert json.dumps(first.as_dict()) == json.dumps(second.as_dict())

    def test_reexec_off_also_certifies(self):
        """The cascade baseline is still a correct (smaller) history."""
        report = run_audited(
            "planner", "abort-heavy", txns=80, batch_size=8,
            reexecute=False,
        )
        assert report.audit.ok, report.audit.format()
        assert report.mode_specific["reexecuted"] == 0
        assert report.mode_specific["cascade_aborted"] > 0

"""Every real run audits clean: scenarios × modes, live and post-hoc.

The positive half of the audit contract (the adversarial tests are the
negative half): all four execution modes, over every registered
scenario, reconstruct into certifiable schedules with zero violations —
and equal-seed deterministic runs certify byte-identically.
"""

import json

import pytest

from repro.audit import Auditor, audit_events, audit_file
from repro.db import Database, RunConfig, backend_names
from repro.obs import Tracer
from repro.workloads import scenario_names

MODES = backend_names()


def run_audited(mode, scenario, *, seed=3, txns=60, **overrides):
    config = RunConfig(
        mode=mode, workers=2, deterministic=True, seed=seed,
        audit=True, **overrides,
    )
    return Database().run(scenario, config, txns=txns)


class TestEveryScenarioEveryMode:
    @pytest.mark.parametrize("scenario", scenario_names())
    @pytest.mark.parametrize("mode", MODES)
    def test_clean_audit(self, mode, scenario):
        report = run_audited(mode, scenario)
        audit = report.audit
        assert audit is not None
        assert audit.ok, audit.format()
        assert audit.violations == ()
        assert audit.segments == audit.certified > 0
        assert audit.reads > 0 and audit.writes > 0

    @pytest.mark.parametrize("mode", MODES)
    def test_threaded_runs_audit_clean(self, mode):
        if mode == "serial":
            pytest.skip("serial is inherently deterministic")
        config = RunConfig(
            mode=mode, workers=3, deterministic=False, seed=7,
            audit=True,
        )
        report = Database().run("sharded-bank", config, txns=60)
        assert report.audit.ok, report.audit.format()


class TestDeterministicByteIdentity:
    @pytest.mark.parametrize("mode", MODES)
    def test_equal_seed_reports_are_byte_identical(self, mode):
        first = run_audited(mode, "sharded-bank", seed=5)
        second = run_audited(mode, "sharded-bank", seed=5)
        assert first.audit.as_json() == second.audit.as_json()

    def test_report_json_has_fixed_key_order(self):
        doc = json.loads(run_audited("serial", "bank").audit.as_json())
        assert list(doc) == [
            "meta", "ok", "events", "dropped", "tracks", "segments",
            "certified", "committed_attempts", "reads", "writes",
            "violations",
        ]


class TestWiring:
    def test_audit_rides_a_passed_tracer(self):
        tracer = Tracer(capacity=None)
        config = RunConfig(
            mode="serial", workers=2, seed=3, trace=tracer, audit=True,
        )
        report = Database().run("bank", config, txns=40)
        assert report.audit.ok
        # The live log and a post-hoc replay agree exactly.
        replay = audit_events(list(tracer.log), dropped=tracer.log.dropped)
        assert replay.as_json() == report.audit.as_json()

    def test_audit_with_trace_path_persists_and_matches(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = RunConfig(
            mode="planner", workers=2, deterministic=True, seed=3,
            trace=str(path), audit=True,
        )
        report = Database().run("bank", config, txns=40)
        assert path.exists()
        assert audit_file(str(path)).as_json() == report.audit.as_json()

    def test_audit_defaults_off_and_stays_out_of_config_echo(self):
        config = RunConfig(mode="serial", workers=2, seed=3)
        assert config.audit is False
        report = Database().run("bank", config, txns=20)
        assert report.audit is None
        assert "audit" not in report.as_dict()["config"]
        audited = RunConfig(mode="serial", workers=2, seed=3, audit=True)
        assert "audit" not in audited.as_dict()

    def test_audit_does_not_change_the_guaranteed_report(self):
        plain = Database().run(
            "sharded-bank",
            RunConfig(mode="serial", workers=2, seed=3),
            txns=40,
        )
        audited = Database().run(
            "sharded-bank",
            RunConfig(mode="serial", workers=2, seed=3, audit=True),
            txns=40,
        )
        assert plain.as_dict() == audited.as_dict()

    def test_audit_must_be_bool(self):
        with pytest.raises(ValueError, match="audit must be a bool"):
            RunConfig(mode="serial", audit="yes")

    def test_human_report_carries_the_verdict(self):
        report = run_audited("serial", "bank")
        assert "certified 1-serializable" in report.report()

    def test_bounded_tracer_drops_void_the_audit(self):
        # A deliberately tiny ring buffer overflows; the audit refuses.
        tracer = Tracer(capacity=8)
        config = RunConfig(
            mode="serial", workers=2, seed=3, trace=tracer, audit=True,
        )
        report = Database().run("bank", config, txns=40)
        assert not report.audit.ok
        assert [v.code for v in report.audit.violations] == [
            "trace-dropped"
        ]

    def test_live_auditor_attach_detach(self):
        tracer = Tracer(capacity=None)
        auditor = Auditor.attach(tracer)
        tracer.instant("data", "txn.write", "engine",
                       txn="a", seq=0, entity="x", pos=1)
        tracer.instant("txn", "txn.commit", "engine", txn="a", seq=0)
        tracer.instant("epoch", "epoch.close", "engine")
        tracer.unsubscribe(auditor.feed)
        tracer.instant("epoch", "epoch.close", "engine")  # not seen
        report = auditor.finish()
        assert report.ok
        assert report.events == 3
        assert report.segments == 1

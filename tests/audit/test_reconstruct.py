"""ScheduleReconstructor: folding event streams into model schedules."""

from repro.audit import ScheduleReconstructor, audit_events
from repro.model.schedules import T_INIT
from repro.obs.tracer import BEGIN, END, INSTANT, TraceEvent


def ev(name, track="engine", ph=INSTANT, ts=0, **args):
    cat = "data" if name.startswith("txn.") else "epoch"
    return TraceEvent(ts, ph, cat, name, track, args)


def rd(txn, entity, pos, writer, *, seq=0, track="engine"):
    return ev("txn.read", track=track, txn=txn, seq=seq,
              entity=entity, pos=pos, writer=writer)


def wr(txn, entity, pos, *, seq=0, track="engine"):
    return ev("txn.write", track=track, txn=txn, seq=seq,
              entity=entity, pos=pos)


def commit(txn, *, seq=0, track="engine"):
    return ev("txn.commit", track=track, txn=txn, seq=seq)


def abort(txn, *, seq=0, track="engine"):
    return ev("txn.abort", track=track, txn=txn, seq=seq)


def close(track="engine"):
    return ev("epoch.close", track=track)


def fold(events):
    rec = ScheduleReconstructor()
    for event in events:
        rec.feed(event)
    return rec.finish()


class TestFolding:
    def test_one_clean_segment(self):
        segs = fold([
            wr("a", "x", 1), commit("a"),
            rd("b", "x", 1, "a"), commit("b"),
            close(),
        ])
        assert len(segs) == 1
        seg = segs[0]
        assert not seg.violations
        assert [str(s) for s in seg.schedule] == ["Wa(x)", "Rb(x)"]
        assert seg.read_sources == {1: "a"}
        assert seg.committed == ("a", "b")

    def test_initial_version_reads_pin_t_init(self):
        segs = fold([
            rd("a", "x", None, T_INIT), commit("a"), close(),
        ])
        assert not segs[0].violations
        assert segs[0].read_sources == {0: T_INIT}

    def test_aborted_attempt_ops_are_canceled(self):
        # Attempt 0 of txn "a" writes then aborts; attempt 1 commits.
        segs = fold([
            wr("a", "x", 1, seq=0), abort("a", seq=0),
            wr("a", "x", 2, seq=1), commit("a", seq=1),
            close(),
        ])
        seg = segs[0]
        assert not seg.violations
        assert [str(s) for s in seg.schedule] == ["Wa(x)"]

    def test_segments_split_at_epoch_close(self):
        segs = fold([
            wr("a", "x", 1), commit("a"), close(),
            rd("b", "x", 1, "a"), commit("b"), close(),
        ])
        assert [s.index for s in segs] == [0, 1]
        # The cross-epoch read folds to the segment's initial state.
        assert segs[1].read_sources == {0: T_INIT}
        assert not segs[0].violations and not segs[1].violations

    def test_settle_batch_end_delimits_planner_tracks(self):
        segs = fold([
            ev("settle.batch", track="driver", ph=BEGIN),
            wr("a", "x", 1, track="driver"),
            commit("a", track="driver"),
            ev("settle.batch", track="driver", ph=END),
        ])
        assert len(segs) == 1
        assert segs[0].track == "driver"

    def test_tracks_fold_independently(self):
        segs = fold([
            wr("a", "x", 1, track="shard-0"), commit("a", track="shard-0"),
            wr("b", "y", 1, track="shard-1"), commit("b", track="shard-1"),
            close("shard-0"), close("shard-1"),
        ])
        assert {s.track for s in segs} == {"shard-0", "shard-1"}
        assert all(not s.violations for s in segs)

    def test_lifecycle_only_stretch_reconstructs_to_nothing(self):
        segs = fold([commit("a"), close()])
        assert segs == []

    def test_finish_flushes_residual_segment_and_is_idempotent(self):
        rec = ScheduleReconstructor()
        rec.feed(wr("a", "x", 1))
        rec.feed(commit("a"))
        assert rec.finish() == rec.finish()
        assert len(rec.segments) == 1

    def test_on_segment_fires_at_every_close(self):
        seen = []
        rec = ScheduleReconstructor(on_segment=seen.append)
        for event in [wr("a", "x", 1), commit("a"), close(),
                      wr("b", "x", 2), commit("b"), close()]:
            rec.feed(event)
        assert [s.index for s in seen] == [0, 1]


class TestAuditEvents:
    def test_empty_stream_is_ok(self):
        report = audit_events([])
        assert report.ok
        assert report.segments == 0

    def test_clean_stream_certifies(self):
        report = audit_events([
            wr("a", "x", 1), commit("a"),
            rd("b", "x", 1, "a"), commit("b"), close(),
        ])
        assert report.ok
        assert report.certified == 1
        assert report.reads == 1 and report.writes == 1

    def test_dropped_refuses_without_feeding(self):
        report = audit_events([wr("a", "x", 1), commit("a")], dropped=3)
        assert not report.ok
        assert [v.code for v in report.violations] == ["trace-dropped"]
        assert report.segments == 0

"""Adversarial audits: every forged trace maps to its named violation.

Two layers: synthetic event streams that isolate each violation code
(the :mod:`repro.audit.violations` contract, one test per code), and
real exported traces mutated line-by-line — a forged reads-from edge, a
deleted write, a reordered commit — which ``repro audit`` must flag
rather than certify.
"""

import json

import pytest

from repro.audit import VIOLATION_CODES, Violation, audit_events, audit_file
from repro.db import Database, RunConfig
from repro.model.schedules import T_INIT
from repro.obs import Tracer, write_jsonl

from tests.audit.test_reconstruct import abort, close, commit, ev, rd, wr


def codes(report):
    return sorted({v.code for v in report.violations})


class TestViolationType:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="violation code"):
            Violation("no-such-code", "engine", 0, "a", "x")

    def test_as_dict_key_order(self):
        v = Violation("missing-write", "engine", 0, "a", "x")
        assert list(v.as_dict()) == [
            "code", "track", "segment", "txn", "detail",
        ]

    def test_every_code_documents_its_invariant(self):
        assert all(desc for desc in VIOLATION_CODES.values())


class TestSyntheticViolations:
    """One isolated stream per violation code."""

    def test_read_from_mismatch_forged_edge(self):
        report = audit_events([
            wr("a", "x", 1), commit("a"),
            rd("b", "x", 1, "z"),  # claims z; position 1 belongs to a
            commit("b"), close(),
        ])
        assert codes(report) == ["read-from-mismatch"]

    def test_missing_write(self):
        report = audit_events([
            rd("b", "x", 7, "a"),  # nothing ever installed position 7
            commit("b"), close(),
        ])
        assert codes(report) == ["missing-write"]

    def test_commit_order_reader_before_source(self):
        report = audit_events([
            wr("a", "x", 1),
            rd("b", "x", 1, "a"),
            commit("b"), commit("a"),  # reader commits first: forbidden
            close(),
        ])
        assert codes(report) == ["commit-order"]

    def test_read_from_aborted(self):
        report = audit_events([
            wr("a", "x", 1, seq=0), abort("a", seq=0),
            rd("b", "x", 1, "a"), commit("b"),
            close(),
        ])
        assert codes(report) == ["read-from-aborted"]

    def test_unresolved_attempt(self):
        report = audit_events([
            wr("a", "x", 1),  # neither commit nor abort follows
            close(),
        ])
        assert codes(report) == ["unresolved-attempt"]

    def test_duplicate_position(self):
        report = audit_events([
            wr("a", "x", 1), commit("a"),
            wr("b", "x", 1), commit("b"),  # same chain position twice
            close(),
        ])
        assert "duplicate-position" in codes(report)

    def test_chain_regression(self):
        report = audit_events([
            wr("a", "x", 5), commit("a"),
            wr("b", "y", 3), commit("b"),  # installs went backwards
            close(),
        ])
        assert codes(report) == ["chain-regression"]

    def test_stale_base_read(self):
        report = audit_events([
            wr("a", "x", 1), commit("a"),
            wr("b", "x", 2), commit("b"), close(),
            rd("c", "x", 1, "a"),  # bypasses the newer position 2
            commit("c"), close(),
        ])
        assert codes(report) == ["stale-base-read"]

    def test_not_serializable_write_skew(self):
        # The classic write-skew shape: each txn reads the initial
        # version of what the other wrote.  Structurally consistent,
        # but no serial order serves both pinned reads.
        report = audit_events([
            rd("a", "x", None, T_INIT),
            rd("b", "y", None, T_INIT),
            wr("a", "y", 1), wr("b", "x", 2),
            commit("a"), commit("b"), close(),
        ])
        assert codes(report) == ["not-serializable"]
        assert report.certified == 0

    def test_trace_dropped_voids_everything(self):
        report = audit_events(
            [wr("a", "x", 1), commit("a"), close()], dropped=1
        )
        assert codes(report) == ["trace-dropped"]

    def test_violated_segment_is_not_certified(self):
        report = audit_events([
            rd("b", "x", 7, "a"), commit("b"), close(),  # broken
            wr("c", "y", 1), commit("c"), close(),       # clean
        ])
        assert not report.ok
        assert report.segments == 2
        assert report.certified == 1


class TestMutatedRealTraces:
    """Exported traces, hand-mutated one line at a time."""

    @pytest.fixture()
    def trace_lines(self, tmp_path):
        tracer = Tracer(capacity=None)
        config = RunConfig(
            mode="serial", workers=2, seed=3, trace=tracer,
        )
        Database().run("sharded-bank", config, txns=40)
        path = tmp_path / "clean.jsonl"
        write_jsonl(tracer, str(path))
        return path.read_text().splitlines()

    def _audit_mutated(self, tmp_path, lines):
        path = tmp_path / "mutated.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return audit_file(str(path))

    def test_clean_trace_certifies(self, tmp_path, trace_lines):
        report = self._audit_mutated(tmp_path, trace_lines)
        assert report.ok and report.certified > 0

    def test_forged_reads_from_edge(self, tmp_path, trace_lines):
        lines = list(trace_lines)
        for i, line in enumerate(lines):
            record = json.loads(line)
            if (record.get("name") == "txn.read"
                    and record["args"].get("pos") is not None):
                record["args"]["writer"] = "t9999"
                lines[i] = json.dumps(record)
                break
        else:
            pytest.fail("no in-segment read to forge")
        report = self._audit_mutated(tmp_path, lines)
        assert not report.ok
        assert "read-from-mismatch" in codes(report)

    def test_deleted_write_event(self, tmp_path, trace_lines):
        read_pos = {
            json.loads(l)["args"]["pos"]
            for l in trace_lines
            if json.loads(l).get("name") == "txn.read"
            and json.loads(l)["args"].get("pos") is not None
        }
        for i, line in enumerate(trace_lines):
            record = json.loads(line)
            if (record.get("name") == "txn.write"
                    and record["args"]["pos"] in read_pos):
                lines = trace_lines[:i] + trace_lines[i + 1:]
                break
        else:
            pytest.fail("no write that is later read")
        report = self._audit_mutated(tmp_path, lines)
        assert not report.ok
        assert "missing-write" in codes(report)

    def test_reordered_commits(self, tmp_path, trace_lines):
        # Swap the commit events of a reads-from pair: the reader now
        # commits before its source — the flush rule is violated.
        lines = list(trace_lines)
        reads = {}
        writer_of = {}
        for line in lines:
            record = json.loads(line)
            if record.get("name") == "txn.write":
                writer_of[record["args"]["pos"]] = record["args"]["txn"]
            if (record.get("name") == "txn.read"
                    and record["args"].get("pos") in writer_of):
                source = writer_of[record["args"]["pos"]]
                if source != record["args"]["txn"]:
                    reads[record["args"]["txn"]] = source
        commit_line = {
            json.loads(l)["args"]["txn"]: i
            for i, l in enumerate(lines)
            if json.loads(l).get("name") == "txn.commit"
        }
        for reader, source in reads.items():
            i, j = commit_line.get(source), commit_line.get(reader)
            if i is not None and j is not None and i < j:
                lines[i], lines[j] = lines[j], lines[i]
                break
        else:
            pytest.fail("no reads-from commit pair to reorder")
        report = self._audit_mutated(tmp_path, lines)
        assert not report.ok
        assert "commit-order" in codes(report)

    def test_forged_drop_count_refuses(self, tmp_path, trace_lines):
        lines = list(trace_lines)
        meta = json.loads(lines[0])
        meta["dropped"] = 5
        lines[0] = json.dumps(meta)
        report = self._audit_mutated(tmp_path, lines)
        assert not report.ok
        assert codes(report) == ["trace-dropped"]

    def test_non_trace_file_is_value_error(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text("{}\n")
        with pytest.raises(ValueError):
            audit_file(str(path))

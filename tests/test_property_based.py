"""Property-based tests (hypothesis) on the core invariants.

Schedules are generated structurally — random transaction systems and
random shuffles — so hypothesis explores the space the paper's theorems
quantify over, with shrinking on failure.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.classes.csr import is_csr
from repro.classes.mvcsr import (
    is_mvcsr,
    mv_conflict_equivalent,
    mvcsr_serialization,
    neighbours_by_swap,
)
from repro.classes.mvsr import is_mvsr, is_mvsr_fixed
from repro.classes.serial import is_serial, serial_schedule_for
from repro.classes.vsr import is_vsr
from repro.graphs.conflict_graph import build_mv_conflict_graph
from repro.model.schedules import Schedule
from repro.model.steps import read, write
from repro.model.version_functions import VersionFunction
from repro.ols.decision import is_ols
from repro.storage.executor import execute, execute_serial, views_match

ENTITIES = ("x", "y")


@st.composite
def schedules(draw, max_txns=3, max_steps=3):
    """A random schedule: a shuffle of a random transaction system."""
    n_txns = draw(st.integers(2, max_txns))
    bodies = []
    for t in range(1, n_txns + 1):
        n = draw(st.integers(1, max_steps))
        steps = []
        for _ in range(n):
            entity = draw(st.sampled_from(ENTITIES))
            if draw(st.booleans()):
                steps.append(read(t, entity))
            else:
                steps.append(write(t, entity))
        bodies.append(steps)
    # Shuffle by repeatedly drawing which transaction goes next.
    cursors = [0] * len(bodies)
    merged = []
    while any(c < len(b) for c, b in zip(cursors, bodies)):
        live = [k for k, b in enumerate(bodies) if cursors[k] < len(b)]
        k = draw(st.sampled_from(live))
        merged.append(bodies[k][cursors[k]])
        cursors[k] += 1
    return Schedule(tuple(merged))


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_theorem1_matches_definition(s):
    """MVCG acyclicity == existence of an equivalent serial schedule."""
    if is_mvcsr(s):
        order = mvcsr_serialization(s)
        serial = serial_schedule_for(s, order)
        assert mv_conflict_equivalent(s, serial)
    else:
        assert build_mv_conflict_graph(s).has_cycle()


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_inclusion_chain(s):
    """serial ⊆ CSR ⊆ VSR∩MVCSR; VSR∪MVCSR ⊆ MVSR (Theorem 3)."""
    if is_serial(s):
        assert is_csr(s)
    if is_csr(s):
        assert is_vsr(s) and is_mvcsr(s)
    if is_vsr(s) or is_mvcsr(s):
        assert is_mvsr(s)


@settings(max_examples=80, deadline=None)
@given(schedules())
def test_swap_neighbours_of_non_mvcsr_stay_non_mvcsr(s):
    """One direction of Theorem 2's machinery: if ``s ~ s'`` (one legal
    swap) and ``s'`` is MVCSR then so is ``s`` (``s`` reaches a serial
    schedule through ``s'``).  Contrapositive: neighbours of a non-MVCSR
    schedule are non-MVCSR.  The converse direction is *false* — a swap
    may create a new read-before-write conflict — so only this direction
    is asserted."""
    if is_mvcsr(s):
        return
    for neighbour in neighbours_by_swap(s)[:6]:
        assert not is_mvcsr(neighbour), str(neighbour)


@settings(max_examples=80, deadline=None)
@given(schedules())
def test_standard_version_function_legal(s):
    vf = VersionFunction.standard(s)
    vf.validate(s)
    assert vf.is_total_on(s)


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_mvsr_witness_semantics(s):
    """Any MVSR witness yields value-identical views vs its serial run
    (in the standard single-write-per-entity model)."""
    from repro.classes.hierarchy import writes_entities_once
    from repro.classes.mvsr import find_mvsr_serialization

    if not writes_entities_once(s):
        return
    found = find_mvsr_serialization(s)
    if found is None:
        return
    order, vf = found
    assert views_match(execute(s, vf), execute_serial(s, order))


@settings(max_examples=40, deadline=None)
@given(schedules(max_txns=2))
def test_schedule_is_ols_with_itself(s):
    """{s, s} is OLS iff s is MVSR."""
    assert is_ols([s, s]) == is_mvsr(s)


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_fixed_decider_monotone(s):
    """Pinning sources can only shrink the witness space."""
    if not is_mvsr(s):
        assert not is_mvsr_fixed(s, {})
        return
    assert is_mvsr_fixed(s, {})


@settings(max_examples=60, deadline=None)
@given(schedules(), st.integers(0, 10))
def test_prefix_closure_of_recognized_classes(s, k):
    """CSR and MVCSR are prefix-closed (what makes SGT/MVCG testers
    correct as online schedulers)."""
    prefix = s.prefix(min(k, len(s)))
    if is_csr(s):
        assert is_csr(prefix)
    if is_mvcsr(s):
        assert is_mvcsr(prefix)

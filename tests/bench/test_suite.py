"""The bench suite registry: declarations, validation, discovery."""

import pytest

from repro.bench import (
    BenchCase,
    BenchSuite,
    get_suite,
    register_suite,
    suite_names,
)
from repro.db import RunConfig


def case(case_id="c", **config):
    return BenchCase(
        case_id=case_id,
        scenario="bank",
        scenario_params={"n_accounts": 4, "seed": 7},
        config={"mode": "serial", "scheduler": "mvto", **config},
        txns=10,
    )


class TestBenchCase:
    def test_run_config_resolves_backend_defaults(self):
        c = case()
        cfg = c.run_config()
        assert isinstance(cfg, RunConfig)
        assert cfg.mode == "serial"
        # Serial mode is deterministic by default — the case property
        # resolves through the backend even though the declaration
        # never says so.
        assert c.deterministic

    def test_declarations_are_frozen(self):
        c = case()
        with pytest.raises(TypeError):
            c.config["scheduler"] = "si"
        with pytest.raises(TypeError):
            c.scenario_params["seed"] = 0

    def test_invalid_config_fails_at_declaration(self):
        with pytest.raises(ValueError):
            case(mode="not-a-mode")

    def test_inapplicable_key_fails_at_declaration(self):
        # lookahead belongs to the pipelined backend, not serial.
        with pytest.raises(ValueError):
            case(lookahead=2)

    def test_empty_case_id_rejected(self):
        with pytest.raises(ValueError, match="case_id"):
            case(case_id="")

    def test_nonpositive_txns_rejected(self):
        with pytest.raises(ValueError, match="txns"):
            BenchCase(
                case_id="c",
                scenario="bank",
                config={"mode": "serial", "scheduler": "mvto"},
                txns=0,
            )


class TestBenchSuite:
    def test_duplicate_case_ids_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            BenchSuite(
                name="dup", description="", cases=(case("a"), case("a"))
            )

    def test_case_lookup(self):
        s = BenchSuite(
            name="s", description="", cases=(case("a"), case("b"))
        )
        assert s.case("b").case_id == "b"
        with pytest.raises(ValueError, match="'a', 'b'"):
            s.case("zzz")

    def test_deterministic_cases_filters(self):
        threaded = BenchCase(
            case_id="thr",
            scenario="sharded-bank",
            scenario_params={"n_shards": 2, "accounts_per_shard": 2,
                             "seed": 5},
            config={"mode": "parallel", "scheduler": "mvto",
                    "workers": 2, "deterministic": False},
            txns=10,
        )
        s = BenchSuite(
            name="s", description="", cases=(case("det"), threaded)
        )
        assert [c.case_id for c in s.deterministic_cases()] == ["det"]


class TestRegistry:
    def test_builtin_suites_registered(self):
        assert set(suite_names()) >= {"e15", "e16", "e17", "e18", "smoke"}

    def test_unknown_suite_lists_choices(self):
        with pytest.raises(ValueError, match="smoke"):
            get_suite("nope")

    def test_double_registration_rejected_unless_replace(self):
        s = BenchSuite(name="_t", description="", cases=(case(),))
        try:
            register_suite(s)
            with pytest.raises(ValueError, match="already registered"):
                register_suite(s)
            register_suite(s, replace=True)
        finally:
            from repro.bench import suite as suite_mod

            suite_mod._SUITES.pop("_t", None)

    def test_smoke_suite_is_all_deterministic(self):
        # The CI gate depends on this: tick-based throughput only.
        smoke = get_suite("smoke")
        assert smoke.deterministic_cases() == smoke.cases
        modes = {c.run_config().mode for c in smoke.cases}
        assert modes == {"serial", "parallel", "planner", "pipelined"}

"""The regression gate: verdicts, edge cases, exit-code rule."""

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare_documents,
    comparison_ok,
    format_comparison,
)


def doc(*cases):
    """A minimal bench document: (case_id, median[, unit]) tuples."""
    return {
        "schema": SCHEMA_VERSION,
        "suite": "t",
        "records": [
            {
                "case": case_id,
                "throughput": {
                    "unit": rest[0] if rest else "txn/tick",
                    "median": median,
                },
            }
            for case_id, median, *rest in cases
        ],
    }


def verdicts(rows):
    return {row["case"]: row["verdict"] for row in rows}


class TestVerdicts:
    def test_neutral_improvement_regression(self):
        rows = compare_documents(
            doc(("same", 10.0), ("up", 10.0), ("down", 10.0)),
            doc(("same", 10.0), ("up", 12.0), ("down", 8.0)),
            max_regress=0.1,
        )
        assert verdicts(rows) == {
            "same": "neutral", "up": "improvement", "down": "regression",
        }
        assert not comparison_ok(rows)

    def test_threshold_boundary_is_neutral(self):
        # Exactly baseline × (1 − max_regress): not crossed, not failed.
        rows = compare_documents(
            doc(("edge", 10.0)), doc(("edge", 9.0)), max_regress=0.1
        )
        assert verdicts(rows) == {"edge": "neutral"}
        assert comparison_ok(rows)
        # One tick below the boundary fails.
        rows = compare_documents(
            doc(("edge", 10.0)), doc(("edge", 8.999)), max_regress=0.1
        )
        assert verdicts(rows) == {"edge": "regression"}

    def test_zero_baseline_never_regresses(self):
        rows = compare_documents(
            doc(("z", 0.0)), doc(("z", 5.0)), max_regress=0.1
        )
        assert verdicts(rows) == {"z": "zero-baseline"}
        assert rows[0]["ratio"] is None
        assert comparison_ok(rows)

    def test_missing_case_fails_the_gate(self):
        rows = compare_documents(doc(("gone", 10.0)), doc())
        assert verdicts(rows) == {"gone": "missing"}
        assert rows[0]["candidate"] is None
        assert not comparison_ok(rows)

    def test_new_case_is_reported_but_never_fails(self):
        rows = compare_documents(doc(), doc(("fresh", 3.0)))
        assert verdicts(rows) == {"fresh": "new"}
        assert comparison_ok(rows)

    def test_unit_mismatch_fails_the_gate(self):
        rows = compare_documents(
            doc(("c", 10.0, "txn/tick")), doc(("c", 10.0, "txn/s"))
        )
        assert verdicts(rows) == {"c": "unit-mismatch"}
        assert not comparison_ok(rows)

    def test_rows_follow_baseline_order_new_last(self):
        rows = compare_documents(
            doc(("a", 1.0), ("b", 1.0)),
            doc(("b", 1.0), ("n", 1.0), ("a", 1.0)),
        )
        assert [r["case"] for r in rows] == ["a", "b", "n"]

    def test_max_regress_validated(self):
        for bad in (-0.1, 1.0, 2.0):
            with pytest.raises(ValueError, match="max_regress"):
                compare_documents(doc(), doc(), max_regress=bad)


class TestFormat:
    def test_table_and_gate_line(self):
        rows = compare_documents(
            doc(("ok", 10.0), ("bad", 10.0)),
            doc(("ok", 10.0), ("bad", 1.0)),
            max_regress=0.1,
        )
        text = format_comparison(rows, max_regress=0.1)
        assert "1 neutral" in text and "1 regression" in text
        assert text.strip().endswith("FAILED")
        assert "[txn/tick]" in text

    def test_clean_comparison_says_ok(self):
        rows = compare_documents(doc(("c", 2.0)), doc(("c", 2.0)))
        text = format_comparison(rows, max_regress=0.1)
        assert text.strip().endswith("ok")

"""The bench runner: repeats, units, aggregation, invariant checks."""

import pytest

from repro.bench import (
    TICK_UNIT,
    WALL_UNIT,
    committed_throughput,
    get_suite,
    logical_ticks,
    run_case,
    run_suite,
)

SMOKE = get_suite("smoke")
SERIAL = SMOKE.case("bank/serial")


class TestRunCase:
    def test_deterministic_case_measures_ticks(self):
        result = run_case(SERIAL, txns=24)
        assert result.deterministic
        assert result.unit == TICK_UNIT
        assert result.txns == 24
        report = result.representative
        assert logical_ticks(report) > 0
        assert committed_throughput(report) == pytest.approx(
            report.committed / logical_ticks(report), abs=1e-6
        )

    def test_repeats_and_warmup_accounting(self):
        result = run_case(SERIAL, repeats=3, warmup=1, txns=16)
        assert result.repeats == 3
        assert result.warmup == 1
        # Deterministic repeats are identical — CV is exactly zero.
        assert result.throughput_summary()["cv"] == 0.0
        assert len(set(result.throughputs)) == 1

    def test_single_repeat_summary(self):
        summary = run_case(SERIAL, txns=16).throughput_summary()
        assert summary["unit"] == TICK_UNIT
        assert summary["median"] == summary["min"] == summary["max"]
        assert summary["cv"] == 0.0

    def test_threaded_case_measures_wall_clock(self):
        e17 = get_suite("e17")
        result = run_case(
            e17.case("sharded-bank/planner/w2/thr"), txns=24
        )
        assert not result.deterministic
        assert result.unit == WALL_UNIT
        assert result.representative.throughput > 0

    def test_best_and_representative_rules(self):
        result = run_case(SERIAL, repeats=3, txns=16)
        tps = result.throughputs
        assert committed_throughput(result.best) == max(tps)
        assert committed_throughput(result.representative) == sorted(
            tps
        )[len(tps) // 2]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_case(SERIAL, repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            run_case(SERIAL, warmup=-1)

    def test_logical_ticks_rejects_tickless_metrics(self):
        with pytest.raises(TypeError, match="tick"):
            logical_ticks(
                type("R", (), {"metrics": object()})()
            )


class TestRunSuite:
    def test_runs_cases_in_declaration_order(self):
        results = run_suite(SMOKE, txns=12)
        assert [r.case.case_id for r in results] == [
            c.case_id for c in SMOKE.cases
        ]

    def test_deterministic_only_filter_and_progress(self):
        seen = []
        results = run_suite(
            get_suite("e18"),
            txns=12,
            deterministic_only=True,
            progress=seen.append,
        )
        assert results == seen
        assert all(r.deterministic for r in results)

"""BenchRecord: schema, provenance, byte-stability, round-trip."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    get_suite,
    load_document,
    make_record,
    run_case,
    run_suite,
    suite_document,
    write_document,
)

SMOKE = get_suite("smoke")
SERIAL = SMOKE.case("bank/serial")

#: the contract: every record carries exactly these keys, in order.
RECORD_KEYS = [
    "schema", "suite", "case", "scenario", "txns", "deterministic",
    "config", "report", "latency", "throughput", "telemetry",
    "provenance",
]


class TestMakeRecord:
    def test_record_shape(self):
        record = make_record("smoke", run_case(SERIAL, txns=24))
        assert list(record) == RECORD_KEYS
        assert record["schema"] == SCHEMA_VERSION
        assert record["case"] == "bank/serial"
        assert record["scenario"]["name"] == "bank"
        assert record["txns"] == 24
        assert record["deterministic"] is True
        assert record["config"]["mode"] == "serial"
        # The guaranteed report schema and the p50/p95/p99 percentiles.
        assert record["report"]["committed"] > 0
        for key in ("p50", "p95", "p99"):
            assert key in record["latency"]
        assert record["throughput"]["unit"] == "txn/tick"

    def test_provenance_fields(self):
        record = make_record(
            "smoke", run_case(SERIAL, repeats=2, warmup=1, txns=16),
            sha="abc123",
        )
        prov = record["provenance"]
        assert prov["git_sha"] == "abc123"
        assert prov["seed"] == 11
        assert prov["repeats"] == 2
        assert prov["warmup"] == 1
        assert prov["python"] and prov["platform"]

    def test_equal_seed_deterministic_records_are_byte_identical(self):
        first = make_record("smoke", run_case(SERIAL, txns=24), sha="x")
        again = make_record("smoke", run_case(SERIAL, txns=24), sha="x")
        assert json.dumps(first) == json.dumps(again)

    def test_every_smoke_case_is_byte_stable(self):
        # All four execution modes honour the determinism contract at
        # the record level — what `repro bench run` relies on.
        for case in SMOKE.cases:
            first = make_record(
                "smoke", run_case(case, txns=12), sha="x"
            )
            again = make_record(
                "smoke", run_case(case, txns=12), sha="x"
            )
            assert json.dumps(first) == json.dumps(again), case.case_id


class TestDocumentRoundTrip:
    def test_write_then_load(self, tmp_path):
        document = suite_document(
            "smoke", run_suite(SMOKE, txns=12)
        )
        path = write_document(document, tmp_path / "BENCH_smoke.json")
        loaded = load_document(path)
        assert loaded == document
        # Stable serialization: construction order, trailing newline.
        text = path.read_text()
        assert text.endswith("}\n")
        assert json.dumps(document, indent=2) + "\n" == text

    def test_missing_file_is_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="no bench document"):
            load_document(tmp_path / "absent.json")

    def test_non_json_is_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not JSON"):
            load_document(path)

    def test_foreign_schema_is_value_error(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "v0", "records": []}))
        with pytest.raises(ValueError, match="schema 'v0'"):
            load_document(path)

    def test_missing_records_is_value_error(self, tmp_path):
        path = tmp_path / "norecords.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="records"):
            load_document(path)

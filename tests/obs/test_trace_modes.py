"""Tracing across the four execution modes: one taxonomy, deterministic
byte-identity, and zero cost when off."""

import json

import pytest

from repro.db import Database, RunConfig
from repro.obs import Tracer, read_jsonl, summarize, to_jsonl

MODES = ("serial", "parallel", "planner", "pipelined")


def run_traced(mode, trace, seed=3, txns=60):
    config = RunConfig(
        mode=mode, workers=2, deterministic=True, seed=seed, trace=trace
    )
    return Database().run("sharded-bank", config, txns=txns)


class TestDeterministicByteIdentity:
    @pytest.mark.parametrize("mode", MODES)
    def test_equal_seeds_equal_traces(self, mode):
        first, second = Tracer(), Tracer()
        run_traced(mode, first)
        run_traced(mode, second)
        assert to_jsonl(first) == to_jsonl(second)

    @pytest.mark.parametrize("mode", MODES)
    def test_written_files_identical(self, mode, tmp_path):
        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        run_traced(mode, a)
        run_traced(mode, b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_different_seeds_differ(self):
        first, second = Tracer(), Tracer()
        run_traced("serial", first, seed=3)
        run_traced("serial", second, seed=4)
        assert to_jsonl(first) != to_jsonl(second)


class TestZeroCostWhenOff:
    @pytest.mark.parametrize("mode", MODES)
    def test_report_dict_identical_traced_or_not(self, mode):
        untraced = run_traced(mode, None)
        traced = run_traced(mode, Tracer())
        assert json.dumps(untraced.as_dict()) == json.dumps(
            traced.as_dict()
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_telemetry_identical_traced_or_not(self, mode):
        untraced = run_traced(mode, None)
        traced = run_traced(mode, Tracer())
        assert untraced.telemetry() == traced.telemetry()


class TestLifecycleTaxonomy:
    """All four modes emit lifecycle events through the one Tracer."""

    @pytest.mark.parametrize("mode", MODES)
    def test_submits_and_commits_present(self, mode):
        tracer = Tracer()
        report = run_traced(mode, tracer)
        names = {e.name for e in tracer.events}
        assert "txn.submit" in names
        assert "txn.commit" in names
        # Shard-local engines also emit per-attempt commits on their own
        # tracks; the driver-level commits are the transaction outcomes.
        commits = [
            e for e in tracer.events
            if e.name == "txn.commit" and not e.track.startswith("shard-")
        ]
        assert len(commits) == report.committed
        # Every commit instant carries the transaction id.
        assert all("txn" in e.args for e in commits)

    @pytest.mark.parametrize("mode", ("planner", "pipelined"))
    def test_plan_modes_emit_stage_spans(self, mode):
        tracer = Tracer()
        run_traced(mode, tracer)
        summary = summarize(tracer.events, dropped=tracer.dropped)
        for phase in ("plan.batch", "execute.batch", "settle.batch"):
            assert phase in summary["phases"], phase
        assert summary["unclosed_spans"] == 0

    def test_parallel_emits_votes_and_flushes(self):
        tracer = Tracer()
        config = RunConfig(
            mode="parallel", workers=2, deterministic=True, seed=3,
            trace=tracer,
        )
        Database().run(
            "sharded-bank", config, txns=60, cross_fraction=0.5
        )
        names = {e.name for e in tracer.events}
        assert "txn.vote" in names
        assert "2pc.flush" in names
        # Shard engines trace on their own tracks.
        tracks = {e.track for e in tracer.events}
        assert any(track.startswith("shard-") for track in tracks)

    def test_serial_emits_epoch_and_gc(self):
        tracer = Tracer()
        config = RunConfig(
            mode="serial", seed=3, trace=tracer, epoch_max_steps=32,
        )
        Database().run("bank", config, txns=80)
        names = {e.name for e in tracer.events}
        assert "epoch.close" in names
        assert "gc.collect" in names


class TestTraceRunOption:
    def test_path_option_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        report = run_traced("planner", path)
        meta, events = read_jsonl(path)
        assert meta["events"] == len(events) > 0
        commits = [e for e in events if e.name == "txn.commit"]
        assert len(commits) == report.committed

    def test_trace_option_rejected_with_bad_type(self):
        with pytest.raises(ValueError, match="trace"):
            RunConfig(mode="serial", trace=42)

    def test_trace_not_in_config_dict(self):
        config = RunConfig(mode="serial", trace=Tracer())
        assert "trace" not in config.as_dict()

"""MetricsRegistry and the telemetry_view adapter."""

import pytest

from repro.obs import MetricsRegistry, telemetry_view


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        c = registry.counter("engine.committed")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("engine.ticks")
        g.set(42)
        assert g.value == 42

    def test_histogram_uses_shared_summary(self):
        h = MetricsRegistry().histogram("latency")
        for sample in [5, 1, 9, 3, 7]:
            h.record(sample)
        assert h.summary() == {
            "count": 5, "min": 1, "p50": 5, "mean": 5.0, "p95": 9,
            "p99": 9, "max": 9,
        }


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_get_and_names_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b", 2)
        counter = registry.counter("a", 1)
        assert registry.get("a") is counter
        assert registry.names() == ("a", "b")

    def test_as_dict_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("z.count", 3)
        registry.counter("a.count", 1)
        registry.gauge("level", 7)
        registry.histogram("lat", [2, 4])
        d = registry.as_dict()
        assert list(d) == ["counters", "gauges", "histograms"]
        assert list(d["counters"]) == ["a.count", "z.count"]
        assert d["gauges"] == {"level": 7}
        assert d["histograms"]["lat"]["count"] == 2


class TestTelemetryView:
    def test_duck_typed_register_into(self):
        class Native:
            def register_into(self, registry):
                registry.counter("custom.hits", 9)

        view = telemetry_view(Native())
        assert view["counters"] == {"custom.hits": 9}

    def test_object_without_register_into_yields_empty_view(self):
        view = telemetry_view(object())
        assert view == {"counters": {}, "gauges": {}, "histograms": {}}

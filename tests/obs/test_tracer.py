"""Tracer, the bounded EventLog, and the zero-cost null default."""

import pytest

from repro.obs import (
    BEGIN,
    END,
    INSTANT,
    NULL_TRACER,
    EventLog,
    NullTracer,
    TraceEvent,
    Tracer,
)


class TestTraceEvent:
    def test_as_dict_key_order_is_fixed(self):
        event = TraceEvent(3, INSTANT, "txn", "txn.commit", "driver",
                           {"txn": "T1", "latency": 4})
        assert list(event.as_dict()) == [
            "ts", "ph", "cat", "name", "track", "args",
        ]

    def test_args_keys_sorted(self):
        event = TraceEvent(0, INSTANT, "txn", "txn.commit", "driver",
                           {"z": 1, "a": 2})
        assert list(event.as_dict()["args"]) == ["a", "z"]


class TestEventLog:
    def test_bounded_drops_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.append(TraceEvent(i, INSTANT, "t", f"e{i}", "driver"))
        assert len(log) == 3
        assert log.dropped == 2
        # The two oldest events are gone; the newest three remain.
        assert [e.name for e in log] == ["e2", "e3", "e4"]

    def test_no_drops_under_capacity(self):
        log = EventLog(capacity=8)
        for i in range(8):
            log.append(TraceEvent(i, INSTANT, "t", "e", "driver"))
        assert len(log) == 8
        assert log.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestTracer:
    def test_emits_in_order_with_logical_clock(self):
        ticks = [0]
        tracer = Tracer()
        tracer.use_clock(lambda: ticks[0])
        tracer.begin("plan", "plan.batch", "plan", batch=0)
        ticks[0] = 5
        tracer.end("plan", "plan.batch", "plan", batch=0)
        ticks[0] = 6
        tracer.instant("txn", "txn.commit", txn="T1")
        phases = [(e.ph, e.ts) for e in tracer.events]
        assert phases == [(BEGIN, 0), (END, 5), (INSTANT, 6)]
        assert tracer.events[2].track == "driver"  # the default track

    def test_dropped_exposed_through_tracer(self):
        tracer = Tracer(capacity=2)
        tracer.use_clock(lambda: 0)
        for i in range(5):
            tracer.instant("t", "e", n=i)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_default_clock_is_monotonic(self):
        tracer = Tracer()
        tracer.instant("t", "first")
        tracer.instant("t", "second")
        first, second = tracer.events
        assert second.ts >= first.ts >= 0


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        # Unconditional calls are tolerated (the hook idiom never makes
        # them, but third-party code might).
        NULL_TRACER.use_clock(lambda: 0)
        NULL_TRACER.instant("t", "e")
        NULL_TRACER.begin("t", "s")
        NULL_TRACER.end("t", "s")


class TestUnboundedLog:
    def test_capacity_none_never_drops(self):
        log = EventLog(capacity=None)
        for i in range(100_000):
            log.append(TraceEvent(i, INSTANT, "t", "e", "driver"))
        assert len(log) == 100_000
        assert log.dropped == 0

    def test_tracer_accepts_capacity_none(self):
        tracer = Tracer(capacity=None)
        tracer.use_clock(lambda: 0)
        for i in range(70_000):  # above the bounded default
            tracer.instant("t", "e", n=i)
        assert tracer.dropped == 0
        assert len(tracer.events) == 70_000


class TestSubscribers:
    def test_sink_sees_every_event_before_drops(self):
        seen = []
        tracer = Tracer(capacity=2)
        tracer.use_clock(lambda: 0)
        tracer.subscribe(seen.append)
        for i in range(5):
            tracer.instant("t", "e", n=i)
        # The log dropped three; the subscriber saw the whole stream.
        assert len(tracer.events) == 2
        assert [e.args["n"] for e in seen] == [0, 1, 2, 3, 4]

    def test_unsubscribe_stops_delivery(self):
        seen = []
        tracer = Tracer()
        tracer.use_clock(lambda: 0)
        tracer.subscribe(seen.append)
        tracer.instant("t", "first")
        tracer.unsubscribe(seen.append)
        tracer.instant("t", "second")
        assert [e.name for e in seen] == ["first"]

    def test_null_tracer_tolerates_subscribers(self):
        NULL_TRACER.subscribe(lambda e: None)
        NULL_TRACER.unsubscribe(lambda e: None)


class TestSortedPayload:
    def test_nested_mappings_sorted_recursively(self):
        event = TraceEvent(0, INSTANT, "t", "e", "driver",
                           {"z": {"b": 1, "a": 2}, "a": [{"d": 1, "c": 2}]})
        args = event.as_dict()["args"]
        assert list(args) == ["a", "z"]
        assert list(args["z"]) == ["a", "b"]
        assert list(args["a"][0]) == ["c", "d"]

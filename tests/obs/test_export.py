"""JSONL round trip and the Chrome trace-viewer export."""

import json

import pytest

from repro.obs import (
    Tracer,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def small_tracer():
    tracer = Tracer()
    tracer.use_clock(lambda: 1)
    tracer.begin("plan", "plan.batch", "plan", batch=0)
    tracer.end("plan", "plan.batch", "plan", batch=0)
    tracer.instant("txn", "txn.commit", txn="T1", latency=3)
    return tracer


class TestJsonl:
    def test_meta_header_then_one_line_per_event(self):
        lines = to_jsonl(small_tracer()).splitlines()
        assert json.loads(lines[0]) == {
            "meta": "trace", "events": 3, "dropped": 0,
        }
        assert len(lines) == 4
        event = json.loads(lines[3])
        assert event["name"] == "txn.commit"
        assert event["args"] == {"latency": 3, "txn": "T1"}

    def test_round_trip(self, tmp_path):
        tracer = small_tracer()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(tracer, path)
        meta, events = read_jsonl(path)
        assert meta["events"] == 3 and meta["dropped"] == 0
        assert [e.as_dict() for e in events] == [
            e.as_dict() for e in tracer.events
        ]

    def test_meta_carries_drop_count(self):
        tracer = Tracer(capacity=1)
        tracer.use_clock(lambda: 0)
        tracer.instant("t", "a")
        tracer.instant("t", "b")
        meta = json.loads(to_jsonl(tracer).splitlines()[0])
        assert meta == {"meta": "trace", "events": 1, "dropped": 1}

    def test_read_missing_file_is_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read trace"):
            read_jsonl(str(tmp_path / "nope.jsonl"))

    def test_read_empty_file_is_value_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_jsonl(str(path))

    def test_read_non_json_is_value_error(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not a JSONL trace"):
            read_jsonl(str(path))

    def test_read_without_meta_header_is_value_error(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text('{"ts":0}\n')
        with pytest.raises(ValueError, match="meta header"):
            read_jsonl(str(path))


class TestChromeTrace:
    def test_tracks_become_named_threads(self):
        doc = to_chrome_trace(small_tracer().events)
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert set(names) == {"plan", "driver"}
        spans = [e for e in doc["traceEvents"] if e["ph"] in ("B", "E")]
        assert all(e["tid"] == names["plan"] for e in spans)

    def test_instants_are_thread_scoped(self):
        doc = to_chrome_trace(small_tracer().events)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"

    def test_write_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome_trace(small_tracer().events, path)
        with open(path, encoding="utf-8") as source:
            doc = json.load(source)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 5  # 2 metadata + 3 events

"""The canonical event taxonomy: one module, three pinned readers."""

import ast
import pathlib

import pytest

from repro.obs.taxonomy import (
    EVENT_NAMES,
    EVENTS,
    EventSpec,
    get_event,
    markdown_table,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestSpecs:
    def test_names_are_unique(self):
        names = [spec.name for spec in EVENTS]
        assert len(names) == len(set(names))
        assert EVENT_NAMES == frozenset(names)

    def test_kinds_are_validated(self):
        with pytest.raises(ValueError, match="kind"):
            EventSpec("x.y", "blip", "", "nobody", "nothing")

    def test_get_event_round_trips(self):
        assert get_event("txn.commit").kind == "instant"
        assert get_event("2pc.flush").kind == "span"

    def test_get_event_unknown_lists_known(self):
        with pytest.raises(ValueError, match="known"):
            get_event("txn.bogus")


class TestDocsRender:
    def test_published_table_is_exactly_the_render(self):
        # the markdown in docs/observability.md is a *render* of the
        # module, never a second copy of the facts.
        docs = (REPO / "docs" / "observability.md").read_text(
            encoding="utf-8"
        )
        assert markdown_table() in docs

    def test_table_has_one_row_per_event(self):
        lines = markdown_table().splitlines()
        assert lines[0] == "| event | kind | emitted by | args |"
        assert len(lines) == 2 + len(EVENTS)


class TestCoverage:
    def emitted_literals(self):
        """Every literal event name at a tracer emit site in src."""
        names = set()
        for path in sorted((REPO / "src").rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("instant", "begin", "end")
                ):
                    continue
                receiver = node.func.value
                if not (
                    (isinstance(receiver, ast.Attribute)
                     and receiver.attr == "tracer")
                    or (isinstance(receiver, ast.Name)
                        and receiver.id == "tracer")
                ):
                    continue
                if len(node.args) > 1 and isinstance(
                    node.args[1], ast.Constant
                ):
                    names.add(node.args[1].value)
        return names

    def test_every_emitted_name_is_documented(self):
        emitted = self.emitted_literals()
        assert emitted, "no emit sites found — the scan regressed"
        assert emitted <= EVENT_NAMES

    def test_every_documented_instant_or_span_can_be_emitted(self):
        # the converse drift: taxonomy rows nothing emits anymore.
        # Span names are emitted via begin *and* end; one sighting is
        # enough.
        emitted = self.emitted_literals()
        assert EVENT_NAMES <= emitted

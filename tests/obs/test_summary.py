"""Trace summarization: phase breakdown, track busy time, overlap."""

from repro.obs import BEGIN, END, INSTANT, TraceEvent, format_summary, summarize


def ev(ts, ph, name, track="driver", **args):
    return TraceEvent(ts, ph, "test", name, track, args)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary["events"] == 0
        assert summary["span"] == 0
        assert summary["phases"] == {}

    def test_phase_durations_and_share(self):
        events = [
            ev(0, BEGIN, "plan.batch", "plan"),
            ev(4, END, "plan.batch", "plan"),
            ev(4, BEGIN, "execute.batch", "execute"),
            ev(10, END, "execute.batch", "execute"),
        ]
        summary = summarize(events)
        assert summary["span"] == 10
        assert summary["phases"]["plan.batch"]["total"] == 4
        assert summary["phases"]["execute.batch"]["total"] == 6
        assert summary["phases"]["plan.batch"]["share"] == 0.4
        assert summary["tracks"]["plan"]["busy"] == 4
        assert summary["tracks"]["execute"]["utilization"] == 0.6

    def test_nested_spans_not_double_counted(self):
        events = [
            ev(0, BEGIN, "outer"),
            ev(1, BEGIN, "inner"),
            ev(3, END, "inner"),
            ev(10, END, "outer"),
        ]
        summary = summarize(events)
        # Both phases report, but track busy time counts only the
        # top-level span.
        assert summary["phases"]["inner"]["total"] == 2
        assert summary["phases"]["outer"]["total"] == 10
        assert summary["tracks"]["driver"]["busy"] == 10

    def test_unclosed_and_orphan_ends(self):
        events = [
            ev(0, BEGIN, "open"),          # never closed
            ev(2, END, "ghost", "other"),  # begin was ring-dropped
        ]
        summary = summarize(events)
        assert summary["unclosed_spans"] == 1
        assert summary["phases"] == {}

    def test_instant_counts(self):
        events = [
            ev(0, INSTANT, "txn.commit"),
            ev(1, INSTANT, "txn.commit"),
            ev(2, INSTANT, "txn.abort"),
        ]
        summary = summarize(events)
        assert summary["instants"] == {"txn.abort": 1, "txn.commit": 2}


class TestFormatSummary:
    def test_overlap_line(self):
        # Two tracks busy at the same time: busy 16 over a span of 10.
        events = [
            ev(0, BEGIN, "plan.batch", "plan"),
            ev(8, END, "plan.batch", "plan"),
            ev(2, BEGIN, "execute.batch", "execute"),
            ev(10, END, "execute.batch", "execute"),
        ]
        text = format_summary(summarize(events))
        assert "critical path 10  (busy 16, overlapped 6)" in text

    def test_renders_all_sections(self):
        events = [
            ev(0, BEGIN, "plan.batch", "plan"),
            ev(4, END, "plan.batch", "plan"),
            ev(4, INSTANT, "txn.commit"),
        ]
        text = format_summary(summarize(events, dropped=2))
        assert "events        3  (dropped 2, unclosed 0)" in text
        assert "plan.batch" in text
        assert "txn.commit 1" in text

    def test_dropped_trace_warns_incomplete(self):
        events = [ev(0, INSTANT, "txn.commit")]
        text = format_summary(summarize(events, dropped=7))
        warning = text.splitlines()[1]
        assert "warning" in warning and "dropped=7" in warning
        assert "incomplete" in warning

    def test_no_warning_without_drops(self):
        text = format_summary(summarize([ev(0, INSTANT, "txn.commit")]))
        assert "warning" not in text

"""The shared nearest-rank percentile rule (repro.obs.stats)."""

import pytest

from repro.obs.stats import percentile, summarize_samples


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0

    def test_single_sample(self):
        assert percentile([7], 0.5) == 7
        assert percentile([7], 0.95) == 7

    def test_nearest_rank_hundred(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.5) == 50
        assert percentile(samples, 0.95) == 95
        assert percentile(samples, 1.0) == 100

    def test_unsorted_input(self):
        assert percentile([9, 1, 5, 3, 7], 0.5) == 5

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.5])
    def test_quantile_out_of_range(self, q):
        with pytest.raises(ValueError):
            percentile([1, 2, 3], q)


class TestSummarizeSamples:
    def test_empty_shape(self):
        assert summarize_samples([]) == {
            "count": 0, "min": 0, "p50": 0, "mean": 0.0, "p95": 0,
            "p99": 0, "max": 0,
        }

    def test_populated(self):
        summary = summarize_samples([5, 1, 9, 3, 7])
        assert summary == {
            "count": 5, "min": 1, "p50": 5, "mean": 5.0, "p95": 9,
            "p99": 9, "max": 9,
        }

    def test_p99_separates_from_p95_at_scale(self):
        summary = summarize_samples(list(range(1, 101)))
        assert summary["p95"] == 95
        assert summary["p99"] == 99

    def test_mean_rounded(self):
        assert summarize_samples([1, 2])["mean"] == 1.5
        assert summarize_samples([1, 1, 2])["mean"] == round(4 / 3, 3)

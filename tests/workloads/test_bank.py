"""The banking workload: serializability protects the invariant."""

import random

from repro.classes.vsr import is_vsr
from repro.model.enumeration import random_interleaving
from repro.storage.executor import execute
from repro.workloads.bank import (
    BankWorkload,
    bank_programs,
    total_balance,
    transfer_transaction,
)


class TestTransfer:
    def test_shape(self):
        t = transfer_transaction(1, "a", "b")
        assert str(t) == "R1(a) R1(b) W1(a) W1(b)"

    def test_programs_move_money(self):
        workload = BankWorkload(n_accounts=2, n_transfers=1, seed=1)
        system, amounts = workload.system()
        programs = bank_programs(amounts)
        schedule = workload.schedule(system)
        result = execute(
            schedule, None, programs, workload.initial_state()
        )
        assert workload.invariant_holds(result.final_state)


class TestInvariant:
    def test_serializable_schedules_preserve_total(self):
        import itertools

        from repro.model.schedules import Schedule

        workload = BankWorkload(n_accounts=4, n_transfers=3, seed=7)
        system, amounts = workload.system()
        programs = bank_programs(amounts)
        # Every serial execution preserves the invariant...
        for perm in itertools.permutations(system.transactions):
            s = Schedule.serial(list(perm))
            result = execute(s, None, programs, workload.initial_state())
            assert workload.invariant_holds(result.final_state)
        # ...and so does every serializable interleaving found by search.
        rng = random.Random(0)
        checked = 0
        for _ in range(300):
            s = random_interleaving(system, rng)
            if not is_vsr(s):
                continue
            result = execute(s, None, programs, workload.initial_state())
            assert workload.invariant_holds(result.final_state), str(s)
            checked += 1
        assert checked > 0

    def test_some_non_serializable_schedule_breaks_total(self):
        """The lost-update anomaly, concretely: two transfers touching the
        same accounts interleaved R-R-W-W destroy money."""
        workload = BankWorkload(n_accounts=2, n_transfers=2, seed=3)
        system, amounts = workload.system()
        programs = bank_programs(amounts)
        rng = random.Random(1)
        broke = False
        for _ in range(300):
            s = random_interleaving(system, rng)
            result = execute(s, None, programs, workload.initial_state())
            if not workload.invariant_holds(result.final_state):
                broke = True
                assert not is_vsr(s), str(s)  # only anomalies break it
        assert broke

    def test_total_balance(self):
        assert total_balance({"a": 3, "b": 4}) == 7

    def test_hot_fraction_concentrates(self):
        hot = BankWorkload(
            n_accounts=8, n_transfers=40, hot_fraction=1.0, seed=5
        )
        system, _ = hot.system()
        touched = set()
        for t in system:
            touched |= t.entities
        assert touched <= set(hot.accounts[:2])

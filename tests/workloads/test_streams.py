"""Schedule streams and the read-mostly scenario."""

import pytest

from repro.workloads.streams import ReadMostlyScenario, schedule_stream


class TestStream:
    def test_count_and_shape(self):
        schedules = list(schedule_stream(10, 3, ["x", "y"], 2, seed=0))
        assert len(schedules) == 10
        for s in schedules:
            assert len(s) == 6
            assert len(s.txn_ids) == 3

    def test_reproducible(self):
        a = [str(s) for s in schedule_stream(5, 2, ["x"], 2, seed=9)]
        b = [str(s) for s in schedule_stream(5, 2, ["x"], 2, seed=9)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [str(s) for s in schedule_stream(5, 3, ["x", "y"], 3, seed=1)]
        b = [str(s) for s in schedule_stream(5, 3, ["x", "y"], 3, seed=2)]
        assert a != b

    def test_skew_affects_entity_mix(self):
        entities = [f"e{k}" for k in range(8)]
        flat = list(schedule_stream(20, 3, entities, 3, seed=3))
        skewed = list(
            schedule_stream(20, 3, entities, 3, seed=3, zipf_skew=2.5)
        )
        def hot_share(schedules):
            total = hot = 0
            for s in schedules:
                for step in s:
                    total += 1
                    hot += step.entity == "e0"
            return hot / total
        assert hot_share(skewed) > hot_share(flat)


class TestReadMostlyScenario:
    def scenario(self, **kw):
        defaults = dict(
            n_shards=4, accounts_per_shard=4, read_fraction=0.9,
            hot_fraction=0.6, hot_keys=2, read_width=4, seed=3,
        )
        defaults.update(kw)
        return ReadMostlyScenario(**defaults)

    def test_read_write_mix_tracks_read_fraction(self):
        items = list(self.scenario().transaction_stream(400))
        reads = sum(1 for t, program in items if program is None)
        assert 0.8 <= reads / len(items) <= 0.97
        # Read-only transactions really are read-only; transfers write.
        for transaction, program in items:
            if program is None:
                assert not transaction.write_set
            else:
                assert len(transaction.write_set) == 2

    def test_hot_keys_absorb_most_accesses(self):
        hot = self.scenario(hot_fraction=0.8)
        cold = self.scenario(hot_fraction=0.0)

        def hot_share(scenario):
            pool = set(scenario.hot_pool)
            total = in_pool = 0
            for transaction, _ in scenario.transaction_stream(300):
                for step in transaction.steps:
                    total += 1
                    in_pool += step.entity in pool
            return in_pool / total

        assert hot_share(hot) > 2 * hot_share(cold)

    def test_full_hot_fraction_terminates(self):
        """Regression: hot_fraction=1.0 with read_width > hot pool must
        fall back to cold accounts instead of rejection-sampling
        forever."""
        scenario = self.scenario(hot_fraction=1.0, hot_keys=2, read_width=4)
        items = list(scenario.transaction_stream(50))
        assert len(items) == 50
        for transaction, program in items:
            if program is None:
                # Audits still read read_width *distinct* accounts.
                entities = [s.entity for s in transaction.steps]
                assert len(set(entities)) == len(entities) == 4

    def test_stream_is_replayable(self):
        scenario = self.scenario()
        first = [str(t) for t, _ in scenario.transaction_stream(80)]
        again = [str(t) for t, _ in scenario.transaction_stream(80)]
        assert first == again

    def test_different_seeds_differ(self):
        a = [str(t) for t, _ in self.scenario(seed=1).transaction_stream(60)]
        b = [str(t) for t, _ in self.scenario(seed=2).transaction_stream(60)]
        assert a != b

    def test_invariant_is_conservation(self):
        scenario = self.scenario()
        state = scenario.initial_state()
        assert scenario.invariant_holds(state)
        accounts = scenario.accounts
        state[accounts[0]] -= 7
        state[accounts[1]] += 7
        assert scenario.invariant_holds(state)
        state[accounts[2]] += 1
        assert not scenario.invariant_holds(state)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.scenario(read_fraction=1.5)
        with pytest.raises(ValueError):
            self.scenario(hot_fraction=-0.1)
        with pytest.raises(ValueError):
            self.scenario(accounts_per_shard=1)
        with pytest.raises(ValueError):
            self.scenario(read_width=0)
        with pytest.raises(ValueError):
            self.scenario(hot_keys=0)

"""Schedule streams."""

from repro.workloads.streams import schedule_stream


class TestStream:
    def test_count_and_shape(self):
        schedules = list(schedule_stream(10, 3, ["x", "y"], 2, seed=0))
        assert len(schedules) == 10
        for s in schedules:
            assert len(s) == 6
            assert len(s.txn_ids) == 3

    def test_reproducible(self):
        a = [str(s) for s in schedule_stream(5, 2, ["x"], 2, seed=9)]
        b = [str(s) for s in schedule_stream(5, 2, ["x"], 2, seed=9)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [str(s) for s in schedule_stream(5, 3, ["x", "y"], 3, seed=1)]
        b = [str(s) for s in schedule_stream(5, 3, ["x", "y"], 3, seed=2)]
        assert a != b

    def test_skew_affects_entity_mix(self):
        entities = [f"e{k}" for k in range(8)]
        flat = list(schedule_stream(20, 3, entities, 3, seed=3))
        skewed = list(
            schedule_stream(20, 3, entities, 3, seed=3, zipf_skew=2.5)
        )
        def hot_share(schedules):
            total = hot = 0
            for s in schedules:
                for step in s:
                    total += 1
                    hot += step.entity == "e0"
            return hot / total
        assert hot_share(skewed) > hot_share(flat)

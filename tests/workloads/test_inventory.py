"""The inventory workload."""

import random

from repro.classes.vsr import is_vsr
from repro.model.enumeration import random_interleaving
from repro.storage.executor import execute
from repro.workloads.inventory import (
    LEDGER,
    InventoryWorkload,
    order_program,
    order_transaction,
)


class TestOrders:
    def test_shape(self):
        t = order_transaction(1, "stock0")
        assert str(t) == "R1(stock0) W1(stock0) R1(shipped) W1(shipped)"

    def test_program_moves_quantity(self):
        workload = InventoryWorkload(n_warehouses=2, n_orders=1, seed=0)
        system, programs = workload.system()
        s = workload.schedule(system)
        result = execute(s, None, programs, workload.initial_state())
        assert workload.invariant_holds(result.final_state)
        assert result.final_state[LEDGER] > 0


class TestInvariant:
    def test_serializable_preserves_reconciliation(self):
        import itertools

        from repro.model.schedules import Schedule

        workload = InventoryWorkload(n_warehouses=2, n_orders=3, seed=1)
        system, programs = workload.system()
        for perm in itertools.permutations(system.transactions):
            s = Schedule.serial(list(perm))
            result = execute(s, None, programs, workload.initial_state())
            assert workload.invariant_holds(result.final_state)
        rng = random.Random(2)
        checked = 0
        for _ in range(300):
            s = random_interleaving(system, rng)
            if not is_vsr(s):
                continue
            result = execute(s, None, programs, workload.initial_state())
            assert workload.invariant_holds(result.final_state), str(s)
            checked += 1
        assert checked > 0

    def test_ledger_contention_breaks_reconciliation(self):
        """Orders race on the shipped ledger: lost updates lose stock."""
        workload = InventoryWorkload(n_warehouses=2, n_orders=2, seed=3)
        system, programs = workload.system()
        rng = random.Random(4)
        broke = False
        for _ in range(300):
            s = random_interleaving(system, rng)
            result = execute(s, None, programs, workload.initial_state())
            if not workload.invariant_holds(result.final_state):
                broke = True
                assert not is_vsr(s), str(s)
        assert broke

"""The scenario registry: names, parameter validation, uniform interface."""

import pytest

from repro.workloads import (
    SCENARIOS,
    scenario_factory,
    scenario_names,
    scenario_spec,
)


class TestRegistry:
    def test_names(self):
        assert scenario_names() == (
            "bank", "inventory", "sharded-bank", "abort-heavy",
            "read-mostly",
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="one of.*sharded-bank"):
            scenario_factory("tpc-c")

    def test_unknown_param_lists_valid_ones(self):
        with pytest.raises(ValueError, match="n_accounts"):
            scenario_factory("bank", n_warehouses=3)

    def test_every_spec_documents_itself(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            assert spec.description
            assert "seed" in spec.params

    @pytest.mark.parametrize("name", scenario_names())
    def test_uniform_interface(self, name):
        scenario = scenario_factory(name, seed=3)
        initial = scenario.initial_state()
        assert initial
        drained = list(scenario.transaction_stream(5))
        assert len(drained) == 5
        assert scenario.invariant_holds(initial)

    def test_bank_binds_audit_every(self):
        scenario = scenario_factory(
            "bank", n_accounts=4, audit_every=2, seed=0
        )
        txns = [t for t, _ in scenario.transaction_stream(6)]
        audits = [t for t in txns if all(s.is_read for s in t.steps)]
        assert len(audits) == 3

    def test_spec_param_sets_match_factories(self):
        """Every declared parameter is actually accepted — a spec that
        drifted from its factory would turn valid knobs into errors."""
        defaults = {
            "bank": {}, "inventory": {},
            "sharded-bank": {}, "abort-heavy": {}, "read-mostly": {},
        }
        probe = {
            "n_accounts": 4, "hot_fraction": 0.1, "audit_every": 3,
            "audit_width": 2, "initial_balance": 50, "seed": 1,
            "n_warehouses": 3, "initial_stock": 9,
            "n_shards": 2, "accounts_per_shard": 3,
            "cross_fraction": 0.2, "hot_shards": 1,
            "read_fraction": 0.5, "hot_keys": 1, "read_width": 2,
            "abort_fraction": 0.3,
        }
        for name, spec in SCENARIOS.items():
            params = {
                key: probe[key] for key in spec.params
            }
            params.update(defaults[name])
            scenario = scenario_factory(name, **params)
            assert scenario.invariant_holds(scenario.initial_state())

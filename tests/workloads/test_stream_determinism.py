"""Transaction streams must be seed-deterministic across runs.

The engine/runtime reproducibility contract starts at the workload: two
same-seed workload instances must emit byte-for-byte identical streams
(same transactions *and* same program behaviour), and different seeds
must actually diversify the stream.
"""

from repro.storage.sharded import shard_of
from repro.workloads.bank import BankWorkload
from repro.workloads.inventory import InventoryWorkload
from repro.workloads.streams import ShardedBankScenario, entities_by_shard

N = 60


def materialize(stream):
    """(transaction, program-fingerprint) pairs for comparison.

    Programs are opaque callables, so they are fingerprinted by their
    outputs on a probe grid covering both write indexes.
    """
    out = []
    for transaction, program in stream:
        if program is None:
            fingerprint = None
        else:
            fingerprint = tuple(
                program(k, [100, 200]) for k in range(2)
            )
        out.append((transaction, fingerprint))
    return out


def bank_stream(seed):
    return materialize(
        BankWorkload(n_accounts=8, hot_fraction=0.5, seed=seed)
        .transaction_stream(N, audit_every=7)
    )


def inventory_stream(seed):
    return materialize(
        InventoryWorkload(n_warehouses=4, seed=seed).transaction_stream(N)
    )


def sharded_stream(seed):
    return materialize(
        ShardedBankScenario(
            n_shards=4, accounts_per_shard=3, cross_fraction=0.3,
            hot_fraction=0.2, seed=seed,
        ).transaction_stream(N)
    )


class TestSameSeedIdentical:
    def test_bank(self):
        assert bank_stream(7) == bank_stream(7)

    def test_inventory(self):
        assert inventory_stream(7) == inventory_stream(7)

    def test_sharded_scenario(self):
        assert sharded_stream(7) == sharded_stream(7)

    def test_sharded_scenario_replayable_from_one_instance(self):
        """Unlike the shared-RNG workloads, one scenario instance can
        emit its stream twice — what lets a benchmark feed the same
        stream to the serial engine and the runtime."""
        scenario = ShardedBankScenario(seed=7)
        first = materialize(scenario.transaction_stream(N))
        second = materialize(scenario.transaction_stream(N))
        assert first == second


class TestDistinctSeedsDiffer:
    def test_bank(self):
        assert bank_stream(1) != bank_stream(2)

    def test_inventory(self):
        assert inventory_stream(1) != inventory_stream(2)

    def test_sharded_scenario(self):
        assert sharded_stream(1) != sharded_stream(2)


class TestShardLayout:
    def test_entities_by_shard_buckets_match_hash(self):
        buckets = entities_by_shard(4, 3)
        assert len(buckets) == 4
        for index, bucket in enumerate(buckets):
            assert len(bucket) == 3
            for name in bucket:
                assert shard_of(name, 4) == index

    def test_layout_is_deterministic(self):
        assert entities_by_shard(5, 2) == entities_by_shard(5, 2)

    def test_scenario_locality_knobs(self):
        """cross_fraction=0 keeps every transfer inside one shard;
        cross_fraction=1 forces every transfer across two shards."""
        for fraction, want_cross in ((0.0, False), (1.0, True)):
            scenario = ShardedBankScenario(
                n_shards=4, accounts_per_shard=3,
                cross_fraction=fraction, hot_fraction=0.0, seed=3,
            )
            for transaction, program in scenario.transaction_stream(40):
                shards = {
                    shard_of(s.entity, 4) for s in transaction.steps
                }
                assert (len(shards) == 2) is want_cross

    def test_single_shard_layout_ignores_cross_fraction(self):
        """With one shard there is nothing to cross into: the stream
        must fall back to shard-local pairs instead of crashing."""
        scenario = ShardedBankScenario(
            n_shards=1, accounts_per_shard=4,
            cross_fraction=0.5, hot_fraction=0.0, seed=3,
        )
        pairs = list(scenario.transaction_stream(30))
        assert len(pairs) == 30
        for transaction, _ in pairs:
            assert {shard_of(s.entity, 1) for s in transaction.steps} == {0}

    def test_hot_traffic_stays_on_hot_shards(self):
        scenario = ShardedBankScenario(
            n_shards=4, accounts_per_shard=3, cross_fraction=0.0,
            hot_fraction=1.0, hot_shards=1, seed=3,
        )
        for transaction, _ in scenario.transaction_stream(40):
            assert {
                shard_of(s.entity, 4) for s in transaction.steps
            } == {0}

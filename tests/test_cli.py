"""The command-line interface."""

import pytest

from repro.cli import _parse_cnf, main


class TestClassify:
    def test_classify_output(self, capsys):
        assert main(["classify", "RA(x) WA(x) RB(x)"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 region: serial" in out
        assert "mvsr: True" in out

    def test_bad_schedule_is_usage_error(self, capsys):
        assert main(["classify", "garbage"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_positive(self, capsys):
        assert main(["check", "csr", "R1(x) W1(x) R2(x)"]) == 0
        assert "csr: True" in capsys.readouterr().out

    def test_negative_exit_code(self, capsys):
        assert main(["check", "csr", "R1(x) R2(x) W1(x) W2(x)"]) == 1
        assert "csr: False" in capsys.readouterr().out


class TestOLS:
    def test_section4_pair(self, capsys):
        s = "RA(x) WA(x) RB(x) RA(y) WA(y) RB(y) WB(y)"
        sp = "RA(x) WA(x) RB(x) RB(y) WB(y) RA(y) WA(y)"
        assert main(["ols", s, sp]) == 1
        assert "False" in capsys.readouterr().out

    def test_singleton(self, capsys):
        assert main(["ols", "R1(x) W1(x)"]) == 0


class TestSchedulers:
    def test_lists_all_schedulers(self, capsys):
        assert main(["schedulers", "W1(x) R2(x) R2(y) R1(y)"]) == 0
        out = capsys.readouterr().out
        for name in ("2pl", "sgt", "mvto", "mvcg", "polygraph", "maximal"):
            assert name in out


class TestFigure1:
    def test_all_ok(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert out.count("(ok)") == 6
        assert "MISMATCH" not in out


class TestCensus:
    def test_runs(self, capsys):
        assert main(
            ["census", "--samples", "20", "--txns", "2", "--steps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "mvcsr" in out


class TestSat:
    def test_parse_cnf(self):
        f = _parse_cnf("a|b & ~a|~b")
        assert len(f) == 2
        assert f.clauses[0] == (("a", True), ("b", True))
        assert f.clauses[1] == (("a", False), ("b", False))

    def test_sat(self, capsys):
        assert main(["sat", "a|b & ~a|~b"]) == 0
        assert "SAT" in capsys.readouterr().out

    def test_unsat_exit_code(self, capsys):
        assert main(["sat", "a & ~a"]) == 1
        assert "UNSAT" in capsys.readouterr().out


class TestArgValidation:
    """Bad numeric arguments die at parse time with a usage error."""

    def test_hot_fraction_out_of_range(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", "--hot-fraction", "1.5"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_hot_fraction_not_a_number(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", "--hot-fraction", "hot"])
        assert excinfo.value.code == 2
        assert "not a number" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--shards", "--sessions", "--txns"])
    def test_engine_counts_must_be_positive(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", flag, "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--workers", "--batch-size"])
    def test_runtime_counts_must_be_positive(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["runtime", flag, "-3"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_engine_fault_is_one_clean_line(self, capsys, monkeypatch):
        """EngineError exits 1 with a single stderr line, no traceback."""
        import repro.cli as cli
        from repro.engine.errors import EngineError

        def explode(args):
            raise EngineError("replay rejected a committed step")

        # args.func is bound at parser build time, so patch the parser.
        real_build = cli.build_parser

        def patched_build():
            parser = real_build()
            original = parser.parse_args

            def parse_args(argv=None):
                args = original(argv)
                args.func = explode
                return args

            parser.parse_args = parse_args
            return parser

        monkeypatch.setattr(cli, "build_parser", patched_build)
        assert cli.main(["engine", "--txns", "5"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == (
            "engine fault: replay rejected a committed step"
        )
        assert "Traceback" not in err


class TestRuntime:
    def test_bank_run_reports_metrics(self, capsys):
        assert main([
            "runtime", "--workers", "4", "--txns", "60",
            "--deterministic", "--batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "mvto on sharded bank" in out
        assert "4 conflict domains" in out
        assert "group commit" in out
        assert "latency" in out
        assert "invariant     ok" in out

    def test_shared_lock_table_note(self, capsys):
        assert main([
            "runtime", "--scheduler", "sgt", "--workers", "4",
            "--txns", "40", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "shared lock table" in out
        assert "1 conflict domain" in out

    def test_deterministic_output_is_byte_identical(self, capsys):
        argv = [
            "runtime", "--workers", "4", "--txns", "50",
            "--deterministic", "--seed", "9", "--cross-fraction", "0.4",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_inventory_workload(self, capsys):
        assert main([
            "runtime", "--workload", "inventory", "--scheduler", "si",
            "--txns", "40", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "invariant     ok" in out


class TestEngine:
    def test_bank_run_reports_metrics(self, capsys):
        assert main([
            "engine", "--workload", "bank", "--scheduler", "mvto",
            "--txns", "30", "--sessions", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "mvto on bank" in out
        assert "committed" in out and "aborted" in out
        assert "invariant     ok" in out

    def test_all_schedulers_and_gc_off(self, capsys):
        assert main([
            "engine", "--workload", "inventory", "--scheduler", "all",
            "--txns", "20", "--sessions", "2", "--no-gc",
        ]) == 0
        out = capsys.readouterr().out
        for name in ["2pl", "2v2pl", "mvto", "sgt", "si"]:
            assert f"== {name} on inventory" in out


class TestPlanner:
    def test_bank_run_reports_metrics(self, capsys):
        assert main([
            "planner", "--workers", "4", "--txns", "60",
            "--deterministic", "--batch-size", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch planner on bank" in out
        assert "cc aborts     0" in out
        assert "abort-free by construction" in out
        assert "invariant     ok" in out

    def test_read_mostly_workload(self, capsys):
        assert main([
            "planner", "--workload", "readmostly", "--workers", "2",
            "--txns", "50", "--read-fraction", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch planner on readmostly" in out
        assert "invariant     ok" in out

    def test_deterministic_output_is_byte_identical(self, capsys):
        argv = [
            "planner", "--workers", "4", "--txns", "50",
            "--deterministic", "--seed", "9", "--batch-size", "8",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    @pytest.mark.parametrize(
        "flag", ["--workers", "--batch-size", "--txns"]
    )
    def test_counts_must_be_positive(self, flag, capsys):
        """The shared execution-args helper validates at parse time for
        the planner exactly as for engine/runtime."""
        with pytest.raises(SystemExit) as excinfo:
            main(["planner", flag, "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_fractions_validated_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["planner", "--read-fraction", "2"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_planner_has_no_retry_or_epoch_flags(self, capsys):
        """Flags that cannot apply (nothing aborts, batch == epoch) do
        not exist on the planner subcommand."""
        for flag in ("--max-retries", "--epoch-steps", "--gc-every"):
            with pytest.raises(SystemExit) as excinfo:
                main(["planner", flag, "4"])
            assert excinfo.value.code == 2

"""The command-line interface."""

import json

import pytest

from repro.cli import _parse_cnf, main


class TestClassify:
    def test_classify_output(self, capsys):
        assert main(["classify", "RA(x) WA(x) RB(x)"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 region: serial" in out
        assert "mvsr: True" in out

    def test_bad_schedule_is_usage_error(self, capsys):
        assert main(["classify", "garbage"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_positive(self, capsys):
        assert main(["check", "csr", "R1(x) W1(x) R2(x)"]) == 0
        assert "csr: True" in capsys.readouterr().out

    def test_negative_exit_code(self, capsys):
        assert main(["check", "csr", "R1(x) R2(x) W1(x) W2(x)"]) == 1
        assert "csr: False" in capsys.readouterr().out


class TestOLS:
    def test_section4_pair(self, capsys):
        s = "RA(x) WA(x) RB(x) RA(y) WA(y) RB(y) WB(y)"
        sp = "RA(x) WA(x) RB(x) RB(y) WB(y) RA(y) WA(y)"
        assert main(["ols", s, sp]) == 1
        assert "False" in capsys.readouterr().out

    def test_singleton(self, capsys):
        assert main(["ols", "R1(x) W1(x)"]) == 0


class TestSchedulers:
    def test_lists_all_schedulers(self, capsys):
        assert main(["schedulers", "W1(x) R2(x) R2(y) R1(y)"]) == 0
        out = capsys.readouterr().out
        for name in ("2pl", "sgt", "mvto", "mvcg", "polygraph", "maximal"):
            assert name in out


class TestFigure1:
    def test_all_ok(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert out.count("(ok)") == 6
        assert "MISMATCH" not in out


class TestCensus:
    def test_runs(self, capsys):
        assert main(
            ["census", "--samples", "20", "--txns", "2", "--steps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "mvcsr" in out


class TestSat:
    def test_parse_cnf(self):
        f = _parse_cnf("a|b & ~a|~b")
        assert len(f) == 2
        assert f.clauses[0] == (("a", True), ("b", True))
        assert f.clauses[1] == (("a", False), ("b", False))

    def test_sat(self, capsys):
        assert main(["sat", "a|b & ~a|~b"]) == 0
        assert "SAT" in capsys.readouterr().out

    def test_unsat_exit_code(self, capsys):
        assert main(["sat", "a & ~a"]) == 1
        assert "UNSAT" in capsys.readouterr().out


class TestArgValidation:
    """Bad numeric arguments die at parse time with a usage error."""

    def test_hot_fraction_out_of_range(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", "--hot-fraction", "1.5"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_hot_fraction_not_a_number(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", "--hot-fraction", "hot"])
        assert excinfo.value.code == 2
        assert "not a number" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--entities", "--sessions", "--txns"])
    def test_engine_counts_must_be_positive(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", flag, "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--workers", "--batch-size"])
    def test_runtime_counts_must_be_positive(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["runtime", flag, "-3"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_engine_fault_is_one_clean_line(self, capsys, monkeypatch):
        """EngineError exits 1 with a single stderr line, no traceback."""
        import repro.cli as cli
        from repro.engine.errors import EngineError

        def explode(args):
            raise EngineError("replay rejected a committed step")

        # args.func is bound at parser build time, so patch the parser.
        real_build = cli.build_parser

        def patched_build():
            parser = real_build()
            original = parser.parse_args

            def parse_args(argv=None):
                args = original(argv)
                args.func = explode
                return args

            parser.parse_args = parse_args
            return parser

        monkeypatch.setattr(cli, "build_parser", patched_build)
        assert cli.main(["engine", "--txns", "5"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == (
            "engine fault: replay rejected a committed step"
        )
        assert "Traceback" not in err


class TestRun:
    """The unified execution entry point over the Database API."""

    def test_list_modes(self, capsys):
        assert main(["run", "--list-modes"]) == 0
        out = capsys.readouterr().out
        for mode in ("serial", "parallel", "planner", "pipelined"):
            assert mode in out
        assert "abort-free" in out  # registry descriptions shown

    def test_list_scenarios(self, capsys):
        assert main(["run", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("bank", "inventory", "sharded-bank", "read-mostly"):
            assert name in out

    def test_bad_mode_shows_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--mode", "quantum"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for mode in ("serial", "parallel", "planner", "pipelined"):
            assert mode in err

    def test_bad_scenario_shows_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scenario", "tpc-c"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in ("bank", "inventory", "sharded-bank", "read-mostly"):
            assert name in err

    def test_inapplicable_mode_option_is_usage_error(self, capsys):
        assert main(["run", "--mode", "serial", "--batch-size", "8"]) == 2
        err = capsys.readouterr().err
        assert "does not apply to mode 'serial'" in err
        assert "applicable options" in err

    def test_inapplicable_scenario_flag_is_usage_error(self, capsys):
        assert main([
            "run", "--scenario", "bank", "--read-fraction", "0.5",
        ]) == 2
        err = capsys.readouterr().err
        assert "does not apply to scenario 'bank'" in err
        assert "read-mostly" in err

    def test_scenario_flag_error_names_the_valid_flags(self, capsys):
        """The satellite fix: a flag/scenario mismatch names the flags
        the chosen scenario *does* accept, mirroring the RunConfig rule
        that a rejected option always lists the applicable ones."""
        assert main([
            "run", "--mode", "planner", "--scenario", "bank",
            "--cross-fraction", "0.2",
        ]) == 2
        err = capsys.readouterr().err
        assert "--cross-fraction does not apply to scenario 'bank'" in err
        # ...and what 'bank' would accept, as flag spellings.
        for flag in ("--entities", "--hot-fraction", "--audit-every"):
            assert flag in err

    def test_scenario_flag_error_lists_every_applicable_flag(self, capsys):
        for scenario, flags in {
            "inventory": ["--entities"],
            "sharded-bank": [
                "--accounts-per-shard", "--audit-every",
                "--cross-fraction", "--hot-fraction",
            ],
            "read-mostly": [
                "--accounts-per-shard", "--hot-fraction",
                "--read-fraction",
            ],
        }.items():
            assert main([
                "run", "--scenario", scenario, "--entities", "4",
            ] if scenario != "inventory" else [
                "run", "--scenario", scenario, "--read-fraction", "0.5",
            ]) == 2
            err = capsys.readouterr().err
            assert f"scenario {scenario!r} accepts" in err
            for flag in flags:
                assert flag in err, (scenario, flag)

    def test_serial_bank_run(self, capsys):
        assert main([
            "run", "--mode", "serial", "--scenario", "bank",
            "--txns", "30", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "bank via serial backend" in out
        assert "committed" in out and "aborted" in out
        assert "invariant     ok" in out

    def test_parallel_run_reports_metrics(self, capsys):
        assert main([
            "run", "--mode", "parallel", "--scenario", "sharded-bank",
            "--workers", "4", "--txns", "60", "--deterministic",
            "--batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded-bank via parallel backend" in out
        assert "4 conflict domains" in out
        assert "group commit" in out
        assert "latency" in out
        assert "invariant     ok" in out

    def test_shared_lock_table_note(self, capsys):
        assert main([
            "run", "--mode", "parallel", "--scenario", "sharded-bank",
            "--scheduler", "sgt", "--workers", "4",
            "--txns", "40", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "shared lock table" in out
        assert "1 conflict domain" in out

    def test_planner_run_reports_metrics(self, capsys):
        assert main([
            "run", "--mode", "planner", "--scenario", "read-mostly",
            "--workers", "2", "--txns", "50", "--read-fraction", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "read-mostly via planner backend" in out
        assert "cc aborts     0" in out
        assert "abort-free by construction" in out
        assert "invariant     ok" in out

    def test_pipelined_run_reports_metrics(self, capsys):
        assert main([
            "run", "--mode", "pipelined", "--scenario", "read-mostly",
            "--workers", "2", "--txns", "50", "--lookahead", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "read-mostly via pipelined backend" in out
        assert "cc aborts     0" in out
        assert "lookahead 2" in out
        assert "pipeline" in out
        assert "invariant     ok" in out

    def test_lookahead_rejected_off_pipelined(self, capsys):
        assert main([
            "run", "--mode", "planner", "--lookahead", "2",
        ]) == 2
        err = capsys.readouterr().err
        assert "lookahead" in err and "does not apply to mode" in err

    @pytest.mark.parametrize(
        "mode", ["serial", "parallel", "planner", "pipelined"]
    )
    def test_deterministic_json_is_byte_identical(self, mode, capsys):
        argv = [
            "run", "--mode", mode, "--scenario", "sharded-bank",
            "--txns", "50", "--deterministic", "--seed", "9", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["mode"] == mode
        assert report["invariant_ok"] is True

    def test_deterministic_output_is_byte_identical(self, capsys):
        argv = [
            "run", "--mode", "parallel", "--scenario", "sharded-bank",
            "--workers", "4", "--txns", "50", "--deterministic",
            "--seed", "9", "--cross-fraction", "0.4",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_inventory_workload(self, capsys):
        assert main([
            "run", "--mode", "parallel", "--scenario", "inventory",
            "--scheduler", "si", "--txns", "40", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "invariant     ok" in out


class TestTrace:
    """`run --trace` and the `trace summarize` subcommand."""

    def test_unwritable_trace_path_fails_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", "--trace", "/nonexistent-dir/t.jsonl",
                "--txns", "5",
            ])
        assert excinfo.value.code == 2
        assert "directory does not exist" in capsys.readouterr().err

    def test_trace_then_summarize(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert main([
            "run", "--mode", "planner", "--scenario", "bank",
            "--txns", "40", "--deterministic", "--trace", path,
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "plan.batch" in out
        assert "critical path" in out
        assert "txn.commit" in out

    def test_summarize_non_trace_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello\n")
        assert main(["trace", "summarize", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_summarize_missing_file_is_usage_error(self, capsys):
        # Rejected at parse time by the shared path validator (the
        # same seam `repro audit` and `repro lint --baseline` use).
        with pytest.raises(SystemExit) as exc:
            main(["trace", "summarize", "/tmp/no-such-trace"])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_carries_telemetry_view(self, capsys):
        assert main([
            "run", "--mode", "serial", "--scenario", "bank",
            "--txns", "30", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        telemetry = report["telemetry"]
        assert set(telemetry) == {"counters", "gauges", "histograms"}
        assert telemetry["counters"]["engine.committed"] == (
            report["committed"]
        )
        assert "engine.latency" in telemetry["histograms"]

    def test_traced_json_equals_untraced_json(self, capsys, tmp_path):
        argv = [
            "run", "--mode", "pipelined", "--scenario", "read-mostly",
            "--workers", "2", "--txns", "40", "--deterministic",
            "--json",
        ]
        assert main(argv) == 0
        untraced = capsys.readouterr().out
        assert main(
            argv + ["--trace", str(tmp_path / "t.jsonl")]
        ) == 0
        traced = capsys.readouterr().out
        assert untraced == traced


class TestBench:
    """The `bench` subcommands: list, run, compare (the CI gate)."""

    def test_list_shows_registered_suites(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("e15", "e16", "e17", "e18", "smoke"):
            assert name in out

    def test_list_one_suite_shows_cases(self, capsys):
        assert main(["bench", "list", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "bank/serial" in out
        assert "read-mostly/pipelined-det" in out

    def test_unknown_suite_is_usage_error(self, capsys):
        assert main(["bench", "list", "--suite", "nope"]) == 2
        assert "unknown bench suite" in capsys.readouterr().err

    def test_run_writes_byte_identical_records(self, capsys, tmp_path):
        """The acceptance contract: two equal-seed deterministic runs
        of the same suite serialize byte-for-byte identically."""
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert main([
                "bench", "run", "--suite", "smoke", "--txns", "12",
                "--json", str(path),
            ]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["schema"] == "repro.bench/v1"
        assert len(document["records"]) == 6

    def test_run_default_path_is_bench_suite_json(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main([
            "bench", "run", "--suite", "smoke", "--txns", "12",
        ]) == 0
        assert "BENCH_smoke.json" in capsys.readouterr().out
        assert (tmp_path / "BENCH_smoke.json").exists()

    def test_compare_gates_regressions(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        assert main([
            "bench", "run", "--suite", "smoke", "--txns", "12",
            "--json", str(base),
        ]) == 0
        # Same checkout, same seed: every case at ratio 1.0 — exit 0.
        assert main([
            "bench", "run", "--suite", "smoke", "--txns", "12",
            "--json", str(cand),
        ]) == 0
        assert main([
            "bench", "compare", str(base), str(cand),
            "--max-regress", "0.1",
        ]) == 0
        assert "-> ok" in capsys.readouterr().out
        # Halve one candidate median: regression — exit 1.
        document = json.loads(cand.read_text())
        document["records"][0]["throughput"]["median"] /= 2
        cand.write_text(json.dumps(document))
        assert main([
            "bench", "compare", str(base), str(cand),
            "--max-regress", "0.1",
        ]) == 1
        out = capsys.readouterr().out
        assert "regression" in out and "FAILED" in out

    def test_compare_missing_baseline_is_usage_error(
        self, capsys, tmp_path
    ):
        assert main([
            "bench", "compare", str(tmp_path / "absent.json"),
            str(tmp_path / "also-absent.json"),
        ]) == 2
        assert "no bench document" in capsys.readouterr().err

    def test_bad_max_regress_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "compare", "a", "b", "--max-regress", "2"])
        assert excinfo.value.code == 2


class TestDeprecatedAliases:
    """`engine` / `runtime` / `planner` delegate to the Database API:
    one deprecation line on stderr, same RunReport as the equivalent
    `repro run` invocation."""

    @pytest.mark.parametrize(
        "alias_argv, run_argv",
        [
            (
                ["engine", "--txns", "30", "--sessions", "2",
                 "--seed", "1"],
                ["run", "--mode", "serial", "--scenario", "bank",
                 "--txns", "30", "--workers", "2", "--seed", "1",
                 "--entities", "8", "--hot-fraction", "0.5"],
            ),
            (
                ["runtime", "--workers", "2", "--txns", "40",
                 "--deterministic", "--batch-size", "4", "--seed", "2"],
                ["run", "--mode", "parallel", "--scenario",
                 "sharded-bank", "--workers", "2", "--txns", "40",
                 "--deterministic", "--batch-size", "4", "--seed", "2",
                 "--accounts-per-shard", "4", "--cross-fraction", "0.1",
                 "--hot-fraction", "0.2"],
            ),
            (
                ["planner", "--workload", "readmostly", "--workers", "2",
                 "--txns", "40", "--deterministic"],
                ["run", "--mode", "planner", "--scenario", "read-mostly",
                 "--workers", "2", "--txns", "40", "--deterministic",
                 "--accounts-per-shard", "4", "--hot-fraction", "0.2",
                 "--read-fraction", "0.9"],
            ),
        ],
        ids=["engine", "runtime", "planner"],
    )
    def test_alias_equals_run(self, alias_argv, run_argv, capsys):
        assert main(alias_argv + ["--json"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert captured.err.count("\n") == 1  # one-line notice
        alias_report = json.loads(captured.out)
        assert main(run_argv + ["--json"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" not in captured.err
        assert alias_report == json.loads(captured.out)

    def test_engine_all_json_is_one_document(self, capsys):
        assert main([
            "engine", "--workload", "inventory", "--scheduler", "all",
            "--txns", "20", "--sessions", "2", "--json",
        ]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [r["config"]["scheduler"] for r in reports] == [
            "2pl", "2v2pl", "mvto", "sgt", "si",
        ]

    def test_engine_all_runs_every_scheduler(self, capsys):
        assert main([
            "engine", "--workload", "inventory", "--scheduler", "all",
            "--txns", "20", "--sessions", "2", "--no-gc",
        ]) == 0
        out = capsys.readouterr().out
        for name in ["2pl", "2v2pl", "mvto", "sgt", "si"]:
            assert f"txns, {name}," in out
        assert out.count("via serial backend") == 5

    def test_planner_alias_output_shape(self, capsys):
        assert main([
            "planner", "--workers", "4", "--txns", "60",
            "--deterministic", "--batch-size", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded-bank via planner backend" in out
        assert "cc aborts     0" in out
        assert "invariant     ok" in out

    def test_deterministic_output_is_byte_identical(self, capsys):
        argv = [
            "planner", "--workers", "4", "--txns", "50",
            "--deterministic", "--seed", "9", "--batch-size", "8",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    @pytest.mark.parametrize(
        "flag", ["--workers", "--batch-size", "--txns"]
    )
    def test_counts_must_be_positive(self, flag, capsys):
        """The shared execution-args helper validates at parse time for
        the planner exactly as for engine/runtime."""
        with pytest.raises(SystemExit) as excinfo:
            main(["planner", flag, "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_fractions_validated_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["planner", "--read-fraction", "2"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_planner_has_no_retry_or_epoch_flags(self, capsys):
        """Flags that cannot apply (nothing aborts, batch == epoch) do
        not exist on the planner subcommand."""
        for flag in ("--max-retries", "--epoch-steps", "--gc-every"):
            with pytest.raises(SystemExit) as excinfo:
                main(["planner", flag, "4"])
            assert excinfo.value.code == 2


class TestAudit:
    """`run --audit` and the `audit` subcommand."""

    def test_run_audit_prints_verdict(self, capsys):
        assert main([
            "run", "--mode", "parallel", "--scenario", "sharded-bank",
            "--txns", "40", "--deterministic", "--audit",
        ]) == 0
        assert "certified 1-serializable" in capsys.readouterr().out

    def test_run_audit_json_carries_the_report(self, capsys):
        assert main([
            "run", "--mode", "planner", "--scenario", "bank",
            "--txns", "40", "--deterministic", "--audit", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["audit"]["ok"] is True
        assert doc["audit"]["certified"] >= 1
        assert "audit" not in doc["config"]  # observability knob

    def test_trace_then_audit(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        json_path = str(tmp_path / "audit.json")
        assert main([
            "run", "--mode", "serial", "--scenario", "bank",
            "--txns", "40", "--trace", path, "--audit",
        ]) == 0
        capsys.readouterr()
        assert main(["audit", path, "--json", json_path]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED: 1-serializable" in out
        with open(json_path, encoding="utf-8") as source:
            doc = json.load(source)
        assert doc["ok"] is True and doc["violations"] == []

    def test_audit_flags_forged_trace_with_exit_1(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert main([
            "run", "--mode", "serial", "--scenario", "bank",
            "--txns", "40", "--trace", path,
        ]) == 0
        lines = open(path, encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if (record.get("name") == "txn.read"
                    and record["args"].get("pos") is not None):
                record["args"]["writer"] = "t9999"
                lines[i] = json.dumps(record)
                break
        open(path, "w", encoding="utf-8").write("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["audit", path]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "read-from-mismatch" in out

    def test_audit_non_trace_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello\n")
        assert main(["audit", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


CLEAN_MODULE = "VALUE = 1\n"
DIRTY_MODULE = (
    "# repro: deterministic-contract\n"
    "items = {1, 2}\n"
    "for item in items:\n"
    "    print(item)\n"
)


class TestLint:
    """The `lint` subcommand: exit codes 0/1/2, JSON, baselines."""

    def test_clean_tree_exits_0(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(CLEAN_MODULE)
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1_and_name_the_rule(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(DIRTY_MODULE)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "D101" in out
        assert "mod.py:3" in out

    def test_unknown_rule_is_usage_error(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(CLEAN_MODULE)
        assert main(["lint", str(tmp_path), "--select", "NOPE"]) == 2
        assert "registered" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_select_and_ignore_narrow_the_run(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(DIRTY_MODULE)
        assert main([
            "lint", str(tmp_path), "--select", "D101", "--ignore", "D101",
        ]) == 0
        assert "0 rule(s)" in capsys.readouterr().out

    def test_json_report_is_machine_readable(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(DIRTY_MODULE)
        report_path = str(tmp_path / "LINT.json")
        assert main(["lint", str(tmp_path), "--json", report_path]) == 1
        with open(report_path, encoding="utf-8") as source:
            doc = json.load(source)
        assert doc["version"] == "repro.lint/v1"
        assert doc["ok"] is False
        assert [f["rule"] for f in doc["findings"]] == ["D101"]
        # fixed key order — byte-stable reports, like every record here.
        assert list(doc) == [
            "version", "files", "rules", "findings", "suppressed",
            "baselined", "ok",
        ]

    def test_write_baseline_then_gate_goes_green(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(DIRTY_MODULE)
        baseline = str(tmp_path / "baseline.json")
        assert main([
            "lint", str(tmp_path / "mod.py"), "--write-baseline", baseline,
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", str(tmp_path / "mod.py"), "--baseline", baseline,
        ]) == 0
        assert "baselined 1" in capsys.readouterr().out

    def test_stale_baseline_fails_the_gate(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(DIRTY_MODULE)
        baseline = str(tmp_path / "baseline.json")
        assert main([
            "lint", str(tmp_path / "mod.py"), "--write-baseline", baseline,
        ]) == 0
        (tmp_path / "mod.py").write_text(CLEAN_MODULE)
        capsys.readouterr()
        assert main([
            "lint", str(tmp_path / "mod.py"), "--baseline", baseline,
        ]) == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestSharedPathValidation:
    """`lint --baseline` and `audit` share one parse-time path check."""

    def extract(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        # strip "usage: ..." and the "repro <cmd>: error: argument X: "
        # prefix, leaving just the type-check's own message.
        return err.splitlines()[-1].split(": ", 3)[3]

    def test_identical_error_text_for_a_missing_file(self, capsys, tmp_path):
        missing = str(tmp_path / "absent.jsonl")
        audit_msg = self.extract(capsys, ["audit", missing])
        lint_msg = self.extract(
            capsys, ["lint", "--baseline", missing, str(tmp_path)]
        )
        trace_msg = self.extract(
            capsys, ["trace", "summarize", missing]
        )
        assert audit_msg == lint_msg == trace_msg
        assert audit_msg == f"no such file: '{missing}'"

"""The complexity-scaling harness (E11)."""

from repro.analysis.complexity import scaling_measurements


class TestScaling:
    def test_rows_and_columns(self):
        rows = scaling_measurements([2, 3], samples_per_size=2, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert row["csr_ms"] >= 0
            assert row["mvcsr_ms"] >= 0
            assert "vsr_ms" in row and "mvsr_ms" in row

    def test_exact_deciders_skipped_above_limit(self):
        rows = scaling_measurements([12], samples_per_size=1, seed=1)
        assert "vsr_ms" not in rows[0]
        assert rows[0]["mvcsr_ms"] >= 0

"""The empirical topography census (E9)."""

from repro.analysis.topography import (
    census,
    cumulative_class_sizes,
    region_counts_table,
)
from repro.classes.hierarchy import REGIONS


class TestCensus:
    def test_counts_sum_to_samples(self):
        counts = census(50, 3, ["x", "y"], 2, seed=0)
        assert sum(counts.values()) == 50

    def test_all_regions_keyed(self):
        counts = census(10, 2, ["x"], 2, seed=1)
        assert set(counts) >= set(REGIONS)

    def test_reproducible(self):
        a = census(30, 3, ["x", "y"], 2, seed=5)
        b = census(30, 3, ["x", "y"], 2, seed=5)
        assert a == b

    def test_cumulative_ordering(self):
        """serial <= csr <= vsr,mvcsr <= mvsr <= all on any sample."""
        counts = census(80, 3, ["x", "y"], 2, seed=2)
        sizes = cumulative_class_sizes(counts)
        assert sizes["serial"] <= sizes["csr"]
        assert sizes["csr"] <= sizes["vsr"] <= sizes["mvsr"]
        assert sizes["csr"] <= sizes["mvcsr"] <= sizes["mvsr"]
        assert sizes["mvsr"] <= sizes["all"]

    def test_multiversion_classes_dominate(self):
        """The paper's headline: MVCSR (and MVSR) strictly exceed CSR on
        contended workloads."""
        counts = census(150, 3, ["x", "y"], 2, seed=3)
        sizes = cumulative_class_sizes(counts)
        assert sizes["mvcsr"] > sizes["csr"]
        assert sizes["mvsr"] > sizes["vsr"]


class TestTable:
    def test_rows_per_sweep_point(self):
        rows = region_counts_table([(2, 2), (3, 2)], n_samples=30, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert sum(row[r] for r in REGIONS) == 30

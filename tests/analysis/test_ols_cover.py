"""The OLS-cover analysis (§5 quantified)."""

from repro.analysis.figure1 import SECTION4_PAIR
from repro.analysis.ols_cover import (
    cover_report,
    greedy_scheduler_cover,
    ols_conflict_graph,
)
from repro.model.parsing import parse_schedule
from repro.ols.decision import is_ols
from repro.workloads.streams import schedule_stream


class TestConflictGraph:
    def test_section4_pair_conflicts(self):
        s, s_prime = SECTION4_PAIR
        members, edges = ols_conflict_graph([s, s_prime])
        assert members == [0, 1]
        assert edges == [(0, 1)]

    def test_non_mvsr_excluded(self):
        bad = parse_schedule("RA(x) RB(x) WA(x) WB(x)")
        ok = parse_schedule("R1(x) W1(x)")
        members, edges = ols_conflict_graph([bad, ok])
        assert members == [1]
        assert edges == []

    def test_compatible_pair_no_edge(self):
        a = parse_schedule("R1(x) W1(x) R2(x)")
        b = parse_schedule("R1(x) W1(x) W2(y)")
        members, edges = ols_conflict_graph([a, b])
        assert members == [0, 1] and edges == []


class TestGreedyCover:
    def test_section4_pair_needs_two_schedulers(self):
        groups = greedy_scheduler_cover(list(SECTION4_PAIR))
        assert len(groups) == 2

    def test_groups_are_jointly_ols(self):
        schedules = list(
            schedule_stream(15, 2, ["x", "y"], 3, seed=3)
        )
        groups = greedy_scheduler_cover(schedules)
        for group in groups:
            assert is_ols([schedules[i] for i in group])

    def test_cover_report_fields(self):
        report = cover_report(list(SECTION4_PAIR))
        assert report["schedules"] == 2
        assert report["mvsr_members"] == 2
        assert report["conflicting_pairs"] == 1
        assert report["schedulers_needed"] == 2
        assert report["largest_group"] == 1

    def test_single_schedule_one_group(self):
        report = cover_report([parse_schedule("R1(x) W1(x)")])
        assert report["schedulers_needed"] == 1

"""Scheduler acceptance harness (E10)."""

from repro.analysis.acceptance import acceptance_rates, class_rates
from repro.schedulers.mvcg import EagerMVCGScheduler, MVCGScheduler
from repro.schedulers.mvto import MVTOScheduler
from repro.schedulers.sgt import SGTScheduler
from repro.schedulers.twopl import TwoPhaseLocking
from repro.workloads.streams import schedule_stream


def _lengths(schedule):
    return {t: len(schedule.projection(t)) for t in schedule.txn_ids}


class TestAcceptanceRates:
    def test_hierarchy_of_schedulers(self):
        """The paper's performance ordering, measured: locking < SGT and
        every multiversion scheduler's rate is bounded by the clairvoyant
        MVCSR recognizer."""
        schedules = list(schedule_stream(60, 3, ["x", "y"], 2, seed=0))
        reports = {
            r.name: r
            for r in acceptance_rates(
                schedules,
                [
                    lambda s: TwoPhaseLocking(_lengths(s)),
                    lambda s: SGTScheduler(),
                    lambda s: MVTOScheduler(),
                    lambda s: EagerMVCGScheduler(),
                    lambda s: MVCGScheduler(),
                ],
            )
        }
        assert reports["2pl"].rate <= reports["sgt"].rate
        assert reports["sgt"].rate <= reports["mvcg"].rate
        assert reports["mvcg-eager"].rate <= reports["mvcg"].rate
        assert reports["mvto"].rate <= reports["mvcg"].rate
        # Multiversion beats single-version locking at this contention.
        assert reports["mvcg-eager"].rate > reports["2pl"].rate

    def test_report_rows(self):
        schedules = list(schedule_stream(10, 2, ["x"], 2, seed=1))
        (report,) = acceptance_rates(schedules, [lambda s: SGTScheduler()])
        row = report.row()
        assert row["total"] == 10
        assert 0.0 <= row["rate"] <= 1.0
        assert 0.0 <= row["mean_prefix"] <= 1.0

    def test_class_ceilings(self):
        schedules = list(schedule_stream(40, 3, ["x", "y"], 2, seed=2))
        ceilings = class_rates(schedules)
        assert ceilings["csr"] <= ceilings["mvcsr"] <= ceilings["mvsr"]
        # SGT attains exactly the CSR ceiling; clairvoyant MVCG attains
        # exactly the MVCSR ceiling.
        reports = {
            r.name: r
            for r in acceptance_rates(
                schedules,
                [lambda s: SGTScheduler(), lambda s: MVCGScheduler()],
            )
        }
        assert abs(reports["sgt"].rate - ceilings["csr"]) < 1e-9
        assert abs(reports["mvcg"].rate - ceilings["mvcsr"]) < 1e-9

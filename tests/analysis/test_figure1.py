"""The Figure 1 harness: verification table and witness search."""

from repro.analysis.figure1 import (
    FIGURE1_EXAMPLES,
    SECTION4_PAIR,
    figure1_table,
    region_witnesses,
)
from repro.model.parsing import parse_transaction
from repro.model.transactions import TransactionSystem
from repro.ols.decision import is_ols


class TestTable:
    def test_every_example_matches_its_region(self):
        for row in figure1_table():
            assert row["match"], row

    def test_six_examples(self):
        assert len(FIGURE1_EXAMPLES) == 6
        assert len({e.region for e in FIGURE1_EXAMPLES}) == 6

    def test_ocr_corrections_documented(self):
        noted = [e for e in FIGURE1_EXAMPLES if e.note]
        assert {e.name for e in noted} == {"s3", "s5"}


class TestWitnessSearch:
    def test_figure_shapes_witness_their_regions(self):
        """OCR-independent reproduction: the (corrected) transaction
        shapes admit interleavings in the claimed regions."""
        s2_shapes = TransactionSystem.of(
            [
                parse_transaction("A", "W(x)"),
                parse_transaction("B", "R(x) W(y)"),
                parse_transaction("C", "R(y) W(x)"),
            ]
        )
        assert region_witnesses(s2_shapes, "mvsr-only", limit=1)

        s5_shapes = TransactionSystem.of(
            [
                parse_transaction("A", "R(x) W(x) W(y)"),
                parse_transaction("B", "R(x) W(y)"),
                parse_transaction("C", "W(y)"),
            ]
        )
        assert region_witnesses(s5_shapes, "vsr-and-mvcsr", limit=1)

    def test_uncorrected_s5_shapes_have_no_witness(self):
        """The OCR text (C writes x) admits *no* interleaving in the
        claimed region under padded semantics — the basis for the
        documented correction."""
        shapes = TransactionSystem.of(
            [
                parse_transaction("A", "R(x) W(x) W(y)"),
                parse_transaction("B", "R(x) W(y)"),
                parse_transaction("C", "W(x)"),
            ]
        )
        witnesses = [
            s
            for s in region_witnesses(shapes, "vsr-and-mvcsr")
            # region_witnesses returns only matches; any match must also
            # not be CSR to sit in the Figure's s5 slot, which classify
            # already guarantees ("vsr-and-mvcsr" excludes csr).
        ]
        assert witnesses == []

    def test_limit_respected(self):
        shapes = TransactionSystem.of(
            [
                parse_transaction("A", "R(x) W(x)"),
                parse_transaction("B", "R(x)"),
            ]
        )
        assert len(region_witnesses(shapes, "serial", limit=1)) == 1


class TestSection4Pair:
    def test_packaged_pair_is_not_ols(self):
        assert not is_ols(list(SECTION4_PAIR))

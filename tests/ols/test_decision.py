"""The OLS decision procedure."""

import random

from repro.model.enumeration import random_interleaving, random_schedule
from repro.model.parsing import parse_schedule
from repro.model.schedules import T_INIT
from repro.ols.decision import (
    branching_prefixes,
    is_ols,
    ols_certificate,
    prefix_signatures,
    shared_signature,
    witness_exists,
)

from tests.helpers import S1_NOT_MVSR, SEC4_S, SEC4_S_PRIME


class TestBranchingPrefixes:
    def test_pairwise_lcp(self):
        assert branching_prefixes([SEC4_S, SEC4_S_PRIME]) == [3]

    def test_identical_schedules(self):
        assert branching_prefixes([SEC4_S, SEC4_S]) == [len(SEC4_S)]

    def test_three_schedules(self):
        a = parse_schedule("R1(x) W1(x) R2(x)")
        b = parse_schedule("R1(x) W1(x) W2(y)")
        c = parse_schedule("R1(x) R2(x) W1(x)")
        assert branching_prefixes([a, b, c]) == [1, 2]


class TestSignatures:
    def test_section4_signatures_disjoint(self):
        lcp = SEC4_S.common_prefix_length(SEC4_S_PRIME)
        sig_s = prefix_signatures(SEC4_S, lcp)
        sig_sp = prefix_signatures(SEC4_S_PRIME, lcp)
        assert sig_s == {((0, T_INIT), (2, "A"))}
        assert sig_sp == {((0, T_INIT), (2, T_INIT))}
        assert not (sig_s & sig_sp)

    def test_shared_signature_found_when_compatible(self):
        sig = shared_signature([SEC4_S, SEC4_S], len(SEC4_S))
        assert sig is not None
        assert witness_exists(SEC4_S, sig)

    def test_shared_signature_none_for_section4(self):
        lcp = SEC4_S.common_prefix_length(SEC4_S_PRIME)
        assert shared_signature([SEC4_S, SEC4_S_PRIME], lcp) is None


class TestIsOLS:
    def test_section4_pair_not_ols(self):
        """The paper's §4 witness that MVCSR is not OLS."""
        assert not is_ols([SEC4_S, SEC4_S_PRIME])

    def test_singleton_ols_iff_mvsr(self):
        assert is_ols([SEC4_S])
        assert not is_ols([S1_NOT_MVSR])

    def test_pair_with_non_mvsr_member_not_ols(self):
        assert not is_ols([SEC4_S, S1_NOT_MVSR])

    def test_disjoint_schedules_ols(self):
        # No common prefix constraints: OLS iff each is MVSR.
        a = parse_schedule("R1(x) W1(x)")
        b = parse_schedule("W2(y) R3(y)")
        assert is_ols([a, b])

    def test_certificate_version_functions_validate(self):
        a = parse_schedule("W1(x) R2(x) W2(y)")
        b = parse_schedule("W1(x) R2(x) R2(y)")
        cert = ols_certificate([a, b])
        assert cert is not None
        for (plen, _g), vf in cert.prefix_version_functions.items():
            vf.validate(a.prefix(plen))

    def test_prefix_closed_sets_random(self):
        """A schedule together with its own prefixes is always OLS when
        the schedule is MVSR (restriction of its version function)."""
        rng = random.Random(0)
        checked = 0
        for _ in range(40):
            s = random_schedule(2, ["x", "y"], 3, rng)
            if not witness_exists(s, {}):
                continue
            assert is_ols([s, s.prefix(4), s.prefix(2)])
            checked += 1
        assert checked > 5


class TestOLSAgainstBruteForce:
    def test_pairs_against_signature_intersection(self):
        """is_ols (joint search) == non-empty signature intersection."""
        rng = random.Random(1)
        for _ in range(60):
            a = random_schedule(2, ["x", "y"], 3, rng)
            b = random_interleaving(a.transaction_system(), rng)
            lcp = a.common_prefix_length(b)
            brute = bool(
                prefix_signatures(a, lcp) & prefix_signatures(b, lcp)
            ) and witness_exists(a, {}) and witness_exists(b, {})
            assert is_ols([a, b]) == brute, f"{a} || {b}"

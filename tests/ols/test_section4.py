"""The §4 worked example, end to end.

The paper establishes that MVCSR is not OLS with one pair of schedules;
this test reproduces every claim made about them.
"""

from repro.classes.dmvsr import is_dmvsr
from repro.classes.mvcsr import is_mvcsr
from repro.classes.mvsr import all_mvsr_serializations, version_function_for_order
from repro.classes.serial import serial_schedule_for
from repro.model.readfrom import view_equivalent
from repro.model.schedules import T_INIT
from repro.ols.decision import is_ols
from repro.schedulers.mvcg import EagerMVCGScheduler, MVCGScheduler
from repro.schedulers.mvto import MVTOScheduler

from tests.helpers import SEC4_S, SEC4_S_PRIME


class TestPaperClaims:
    def test_both_in_dmvsr_hence_mvcsr(self):
        assert is_dmvsr(SEC4_S) and is_dmvsr(SEC4_S_PRIME)
        assert is_mvcsr(SEC4_S) and is_mvcsr(SEC4_S_PRIME)

    def test_s_serializes_only_as_AB(self):
        assert all_mvsr_serializations(SEC4_S) == [["A", "B"]]

    def test_s_prime_serializes_only_as_BA(self):
        assert all_mvsr_serializations(SEC4_S_PRIME) == [["B", "A"]]

    def test_s_reads_x_from_A(self):
        vf = version_function_for_order(SEC4_S, ["A", "B"])
        # R_B(x) is at position 2; W_A(x) at position 1.
        assert vf[2] == 1

    def test_s_prime_reads_x_from_T0(self):
        vf = version_function_for_order(SEC4_S_PRIME, ["B", "A"])
        assert vf[2] == T_INIT

    def test_view_equivalences(self):
        for s, order in ((SEC4_S, ["A", "B"]), (SEC4_S_PRIME, ["B", "A"])):
            vf = version_function_for_order(s, order)
            r = serial_schedule_for(s, order)
            assert view_equivalent(s, r, vf, None)

    def test_pair_is_not_ols(self):
        """No version function on the common prefix serves both."""
        assert not is_ols([SEC4_S, SEC4_S_PRIME])


class TestSchedulerConsequences:
    """No on-line scheduler can accept both schedules of the pair —
    concretely visible on the implemented multiversion schedulers."""

    def test_clairvoyant_mvcg_accepts_both(self):
        # ...which is exactly why it is not an on-line scheduler: its
        # version function is only available at end-of-stream.
        assert MVCGScheduler().accepts(SEC4_S)
        assert MVCGScheduler().accepts(SEC4_S_PRIME)

    def test_eager_mvcg_cannot_accept_both(self):
        accepted = [
            EagerMVCGScheduler().accepts(s) for s in (SEC4_S, SEC4_S_PRIME)
        ]
        assert not all(accepted)
        assert any(accepted)  # it does accept one of them

    def test_mvto_cannot_accept_both(self):
        accepted = [
            MVTOScheduler().accepts(s) for s in (SEC4_S, SEC4_S_PRIME)
        ]
        assert not all(accepted)
        assert any(accepted)

"""Shared fixtures: canonical schedules from the paper and small systems."""

from __future__ import annotations

from repro.model.parsing import parse_schedule
from repro.model.schedules import Schedule

# Figure 1 witnesses (see repro.analysis.figure1 for provenance notes).
S1_NOT_MVSR = parse_schedule("RA(x) RB(x) WA(x) WB(x)")
S2_MVSR_ONLY = parse_schedule("WA(x) RB(x) RC(y) WC(x) WB(y)")
S3_VSR_NOT_MVCSR = parse_schedule("WA(x) RB(x) RC(y) WC(x) WD(x) WB(y)")
S4_MVCSR_NOT_VSR = parse_schedule("RA(x) WA(x) RB(x) RB(y) WB(y) RA(y) WA(y)")
S5_VSR_AND_MVCSR = parse_schedule("RA(x) WA(x) RB(x) WB(y) WA(y) WC(y)")
S6_SERIAL = parse_schedule("RA(x) WA(x) RB(x) WB(y)")

# §4's non-OLS pair: unique serializations AB and BA respectively.
SEC4_S = parse_schedule("RA(x) WA(x) RB(x) RA(y) WA(y) RB(y) WB(y)")
SEC4_S_PRIME = parse_schedule("RA(x) WA(x) RB(x) RB(y) WB(y) RA(y) WA(y)")

ALL_FIGURE1 = {
    "s1": S1_NOT_MVSR,
    "s2": S2_MVSR_ONLY,
    "s3": S3_VSR_NOT_MVCSR,
    "s4": S4_MVCSR_NOT_VSR,
    "s5": S5_VSR_AND_MVCSR,
    "s6": S6_SERIAL,
}


def tiny_schedules(max_txns: int = 2, max_steps: int = 3) -> list[Schedule]:
    """A deterministic, moderately sized pool of small schedules."""
    import random

    from repro.model.enumeration import random_schedule

    rng = random.Random(12345)
    pool = []
    for _ in range(60):
        pool.append(
            random_schedule(
                rng.randint(2, max_txns + 1),
                ["x", "y"],
                rng.randint(1, max_steps),
                rng,
            )
        )
    return pool

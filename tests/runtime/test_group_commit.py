"""Group-commit batching: the recoverability flush rule, in isolation."""

import pytest

from repro.runtime.group_commit import GroupCommitLog


class Ticket:
    """A stand-in batch member: a key plus declared read-from deps."""

    def __init__(self, key, deps=()):
        self.key = key
        self.deps = set(deps)


def deps_of(ticket):
    return ticket.deps


class TestBatchRule:
    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            GroupCommitLog(0)

    def test_full_at_batch_size(self):
        log = GroupCommitLog(2)
        log.add(Ticket("a"))
        assert not log.full
        log.add(Ticket("b"))
        assert log.full

    def test_independent_members_all_flushable(self):
        log = GroupCommitLog(4)
        for key in "abc":
            log.add(Ticket(key))
        candidates, _ = log.plan(deps_of)
        assert {t.key for t in candidates} == {"a", "b", "c"}

    def test_dep_outside_batch_holds_member_back(self):
        """A txn whose read-from source has not voted yet must wait."""
        log = GroupCommitLog(4)
        log.add(Ticket("reader", deps={"unvoted-writer"}))
        log.add(Ticket("free"))
        candidates, _ = log.plan(deps_of)
        assert {t.key for t in candidates} == {"free"}
        # Held-over is charged when the flush round executes, and only
        # once — replanning during a drain must not inflate it.
        log.plan(deps_of)
        assert log.stats.held_over == 0
        log.settle(candidates, [])
        assert log.stats.held_over == 1

    def test_held_member_flushes_once_dep_flushed(self):
        log = GroupCommitLog(4)
        writer = Ticket("writer")
        reader = Ticket("reader", deps={"writer"})
        log.add(writer)
        log.add(reader)
        candidates, dep_map = log.plan(deps_of)
        # Same batch: dependency satisfied inside the batch.
        assert {t.key for t in candidates} == {"writer", "reader"}
        committed = log.commit_closure(
            {"writer": True, "reader": True}, dep_map
        )
        assert committed == {"writer", "reader"}
        log.settle([writer, reader], [])
        # A later reader of the flushed writer sails through alone: the
        # dispatcher's deps_of only reports *uncommitted* dependencies,
        # so a flushed source simply stops appearing.
        late = Ticket("late", deps=set())
        log.add(late)
        candidates, _ = log.plan(deps_of)
        assert {t.key for t in candidates} == {"late"}

    def test_transitive_hold(self):
        """reader -> middle -> unvoted: both held back."""
        log = GroupCommitLog(8)
        log.add(Ticket("middle", deps={"unvoted"}))
        log.add(Ticket("reader", deps={"middle"}))
        candidates, _ = log.plan(deps_of)
        assert candidates == []
        # no flush round ran, so nothing is charged as held over
        assert log.stats.held_over == 0
        assert len(log) == 2

    def test_dependency_cycle_flushes_together(self):
        """Mutual dirty reads — the serial driver's deadlock — flush
        as one batch instead of waiting on each other forever."""
        log = GroupCommitLog(4)
        a = Ticket("a", deps={"b"})
        b = Ticket("b", deps={"a"})
        log.add(a)
        log.add(b)
        candidates, dep_map = log.plan(deps_of)
        assert {t.key for t in candidates} == {"a", "b"}
        committed = log.commit_closure({"a": True, "b": True}, dep_map)
        assert committed == {"a", "b"}


class TestVotes:
    def test_vote_no_excludes_member(self):
        log = GroupCommitLog(4)
        log.add(Ticket("dead"))
        log.add(Ticket("alive"))
        _, dep_map = log.plan(deps_of)
        committed = log.commit_closure(
            {"dead": False, "alive": True}, dep_map
        )
        assert committed == {"alive"}

    def test_vote_no_cascades_to_dependents(self):
        """A reader of a vote-no writer must not commit."""
        log = GroupCommitLog(4)
        log.add(Ticket("writer"))
        log.add(Ticket("reader", deps={"writer"}))
        _, dep_map = log.plan(deps_of)
        committed = log.commit_closure(
            {"writer": False, "reader": True}, dep_map
        )
        assert committed == set()

    def test_settle_accounting(self):
        log = GroupCommitLog(4)
        tickets = [Ticket(k) for k in "abcd"]
        for t in tickets:
            log.add(t)
        log.settle(tickets[:3], tickets[3:], forced=True)
        assert len(log) == 0
        stats = log.stats
        assert stats.batches == 1
        assert stats.flushed == 3
        assert stats.flush_aborts == 1
        assert stats.forced == 1
        assert stats.largest_batch == 3
        assert stats.mean_batch == 3.0

"""Shard workers driven directly: votes, aborts, flush, adapters.

The macro runtime keeps conflicts rare by design (whole transactions
execute atomically inside a domain), so these tests construct the
adversarial interleavings by hand through the worker's cross-shard
surface (``begin_part``/``submit_part``/``finish_part``) and check every
branch of the vote / flush-apply / abort machinery deterministically.
"""

import threading

import pytest

from repro.engine import EngineError, OnlineEngine, TransactionAborted, TxnState
from repro.engine.factory import scheduler_factory
from repro.model.steps import read, write
from repro.model.transactions import Transaction
from repro.runtime.dispatch import TxnTicket
from repro.runtime.shared import (
    DomainPlan,
    LockedScheduler,
    locked_factory,
    plan_domains,
)
from repro.runtime.worker import FlushRendezvous, ShardWorker, WorkerFuture
from repro.schedulers.mvto import MVTOScheduler
from repro.schedulers.sgt import SGTScheduler


def make_worker(scheduler="mvto", initial=None, **engine_kwargs):
    engine_kwargs.setdefault("hold_commits", True)
    engine_kwargs.setdefault("gc_enabled", False)
    engine = OnlineEngine(
        scheduler_factory(scheduler),
        n_shards=1,
        initial=initial or {"x": 0, "y": 0},
        **engine_kwargs,
    )
    return ShardWorker(0, engine, deterministic=True)


def ticket_for(transaction, seq, program=None):
    return TxnTicket(
        transaction, program, transaction.txn, born_tick=0, seq=seq
    )


def transfer(txn, a="x", b="y"):
    return Transaction(
        txn, (read(txn, a), read(txn, b), write(txn, a), write(txn, b))
    )


class TestExecute:
    def test_clean_execute_votes_and_holds(self):
        worker = make_worker()
        ticket = ticket_for(transfer("t1"), seq=0)
        outcome, reason = worker.execute(ticket)
        assert (outcome, reason) == ("voted", None)
        attempt = ticket.attempts[0]
        # Complete but commit-held: group commit decides durability.
        assert attempt.state is TxnState.PENDING
        assert attempt.hold

    def test_mvto_rejection_reports_abort(self):
        """An old-timestamp write after a younger read is rejected."""
        worker = make_worker("mvto")
        old = ticket_for(Transaction("old", (write("old", "x"),)), seq=1)
        young = ticket_for(Transaction("young", (read("young", "x"),)), seq=2)
        assert worker.execute(young)[0] == "voted"
        outcome, reason = worker.execute(old)
        assert outcome == "aborted"
        assert reason == "rejected"
        assert worker.engine.metrics.aborted_rejected == 1

    def test_retry_with_new_seq_succeeds(self):
        worker = make_worker("mvto")
        young = ticket_for(Transaction("young", (read("young", "x"),)), seq=2)
        worker.execute(young)
        loser = ticket_for(Transaction("old", (write("old", "x"),)), seq=1)
        assert worker.execute(loser)[0] == "aborted"
        retry = ticket_for(Transaction("old", (write("old", "x"),)), seq=3)
        assert worker.execute(retry)[0] == "voted"


class TestCrossParts:
    def test_parts_protocol_and_explicit_values(self):
        worker = make_worker()
        ticket = ticket_for(
            Transaction("c1", (read("c1", "x"), write("c1", "x"))), seq=0
        )
        attempt = worker.begin_part(ticket, 2)
        value = worker.submit_part(attempt, read("c1", "x"))
        assert value == 0
        worker.submit_part(attempt, write("c1", "x"), 41)
        worker.finish_part(attempt)
        assert attempt.state is TxnState.PENDING
        assert worker.engine.store.latest("x").value == 41

    def test_abort_part_is_idempotent(self):
        worker = make_worker()
        ticket = ticket_for(Transaction("c1", (write("c1", "x"),)), seq=0)
        attempt = worker.begin_part(ticket, 1)
        worker.submit_part(attempt, write("c1", "x"), 7)
        worker.abort_part(attempt, "remote-abort")
        assert attempt.state is TxnState.ABORTED
        worker.abort_part(attempt, "remote-abort")  # no-op
        assert worker.engine.metrics.aborted_external == 1
        # The aborted write's version is gone.
        assert worker.engine.store.latest("x").value == 0

    def test_submit_after_remote_abort_raises(self):
        worker = make_worker()
        ticket = ticket_for(
            Transaction("c1", (write("c1", "x"), write("c1", "y"))), seq=0
        )
        attempt = worker.begin_part(ticket, 2)
        worker.submit_part(attempt, write("c1", "x"), 1)
        worker.abort_part(attempt, "remote-abort")
        with pytest.raises(TransactionAborted):
            worker.submit_part(attempt, write("c1", "y"), 2)


class TestFlush:
    def _voted(self, worker, txn, steps, seq):
        ticket = ticket_for(Transaction(txn, steps), seq=seq)
        outcome, _ = worker.execute(ticket)
        assert outcome == "voted"
        return ticket

    def test_flush_commits_dependency_chain_in_one_batch(self):
        worker = make_worker()
        writer = self._voted(worker, "w", (write("w", "x"),), seq=0)
        reader = self._voted(worker, "r", (read("r", "x"),), seq=1)
        # The reader consumed the writer's uncommitted (held) version.
        assert worker.engine.store.latest("x").value is not None
        assert reader.attempts[0].deps == {writer.attempts[0]}
        votes = worker.flush_votes([writer, reader])
        assert votes == {"w": True, "r": True}
        losers = worker.flush_apply([writer, reader], {"w", "r"})
        assert losers == []
        assert writer.attempts[0].state is TxnState.COMMITTED
        assert reader.attempts[0].state is TxnState.COMMITTED

    def test_flush_apply_aborts_undecided(self):
        worker = make_worker()
        alive = self._voted(worker, "a", (write("a", "x"),), seq=0)
        losers = worker.flush_apply([alive], set())
        assert losers == ["a"]
        assert alive.attempts[0].state is TxnState.ABORTED

    def test_dead_member_votes_no(self):
        worker = make_worker()
        doomed = self._voted(worker, "d", (write("d", "x"),), seq=0)
        worker.abort_part(doomed.attempts[0], "remote-abort")
        assert worker.flush_votes([doomed]) == {"d": False}

    def test_bad_plan_raises_engine_error(self):
        """Committing a reader without its in-batch dependency is a
        planner bug, and the worker refuses to paper over it."""
        worker = make_worker()
        writer = self._voted(worker, "w", (write("w", "x"),), seq=0)
        reader = self._voted(worker, "r", (read("r", "x"),), seq=1)
        assert reader.attempts[0].deps  # actually depends on the writer
        with pytest.raises(EngineError):
            worker.flush_apply([writer, reader], {"r"})


class TestEpochs:
    def test_epoch_closes_only_when_quiescent(self):
        worker = make_worker(epoch_max_steps=2)
        held = ticket_for(
            Transaction("t", (write("t", "x"), write("t", "y"))), seq=0
        )
        worker.execute(held)
        assert worker.wants_epoch_close
        assert not worker.maybe_close_epoch()  # held attempt is live
        worker.flush_apply([held], {"t"})  # flush triggers the close
        assert worker.engine.metrics.epochs_closed == 1

    def test_finalize_rejects_live_attempts(self):
        worker = make_worker()
        worker.execute(ticket_for(Transaction("t", (write("t", "x"),)), 0))
        with pytest.raises(EngineError):
            worker.finalize()


class TestThreadedWorker:
    def test_tasks_run_on_worker_thread_in_order(self):
        worker = make_worker()
        worker.deterministic = False
        worker.start()
        try:
            order = []
            futures = [
                worker.post(lambda k=k: order.append(k) or k)
                for k in range(20)
            ]
            assert [f.result() for f in futures] == list(range(20))
            assert order == list(range(20))
        finally:
            worker.stop()

    def test_exceptions_relayed(self):
        worker = make_worker()
        worker.deterministic = False
        worker.start()
        try:
            def boom():
                raise TransactionAborted("t", "rejected")

            with pytest.raises(TransactionAborted):
                worker.post(boom).result()
        finally:
            worker.stop()


class TestRendezvous:
    def test_last_arriver_decides_and_all_agree(self):
        decisions = []
        rendezvous = FlushRendezvous(
            2, lambda votes: {k for k, ok in votes.items() if ok}
        )

        def party(votes):
            decisions.append(rendezvous.exchange(votes))

        threads = [
            threading.Thread(target=party, args=({"a": True, "b": True},)),
            threading.Thread(target=party, args=({"b": False, "c": True},)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # b was voted down by one party: AND semantics.
        assert decisions == [{"a", "c"}, {"a", "c"}]
        assert rendezvous.decision == {"a", "c"}

    def test_decision_before_votes_raises(self):
        rendezvous = FlushRendezvous(1, lambda votes: set())
        with pytest.raises(RuntimeError):
            rendezvous.decision


class TestSharedAdapter:
    def test_plan_partitionable(self):
        plan = plan_domains(scheduler_factory("mvto"), 4)
        assert plan == DomainPlan(4, 4, True, "mvto")
        assert "partitioned" in plan.note

    def test_plan_shared_lock_table(self):
        for name in ("sgt", "2pl", "2v2pl"):
            plan = plan_domains(scheduler_factory(name), 4)
            assert plan.n_domains == 1
            assert not plan.partitionable
            assert "shared lock table" in plan.note

    def test_locked_scheduler_delegates(self):
        inner = SGTScheduler()
        locked = LockedScheduler(inner)
        assert locked.submit(read("t1", "x"))
        assert locked.accepted_steps == [read("t1", "x")]
        assert not locked.dead
        assert locked.source_of_read(0) is None  # single-version
        locked.reset()
        assert locked.accepted_steps == []
        assert locked.name == "sgt+lock"
        assert not locked.shard_partitionable

    def test_locked_factory_wraps(self):
        factory = locked_factory(scheduler_factory("sgt"))
        product = factory({})
        assert isinstance(product, LockedScheduler)

    def test_priming_survives_reset_until_cleared(self):
        scheduler = MVTOScheduler()
        scheduler.prime_transaction("t", 42)
        scheduler.submit(read("t", "x"))
        assert scheduler._timestamps["t"] == 42
        scheduler.reset()  # abort-replay path keeps primes
        scheduler.submit(read("t", "x"))
        assert scheduler._timestamps["t"] == 42
        scheduler.clear_primes()  # epoch boundary drops them
        scheduler.reset()
        scheduler.submit(read("t", "x"))
        assert scheduler._timestamps["t"] == 0


class TestWorkerFuture:
    def test_resolve_and_done(self):
        future = WorkerFuture()
        assert not future.done
        future.resolve(5)
        assert future.done
        assert future.result() == 5

    def test_reject_reraises(self):
        future = WorkerFuture()
        future.reject(ValueError("nope"))
        with pytest.raises(ValueError):
            future.result()

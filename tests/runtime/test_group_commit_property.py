"""Property test: commit_closure is THE greatest fixpoint.

The flush rule's implementation iterates deletions until stable; the
specification is "the greatest subset of yes-voters closed under the
dependency relation".  This test states the spec independently — union
of *all* closed subsets, found by brute force — and checks the two agree
on random dependency graphs, including mutual-dirty-read cycles (the
case the fixpoint formulation exists for: naive per-member checking
would deadlock a cycle, the greatest fixpoint commits it whole).
"""

from itertools import chain, combinations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.runtime.group_commit import GroupCommitLog


def brute_force_closure(votes: dict, dep_map: dict) -> set:
    """Union of all dependency-closed subsets of the yes-voters.

    A subset S is closed iff every member's dependencies lie inside S.
    Closed sets are closed under union, so the union of all of them is
    the unique greatest one — the spec commit_closure must compute.
    """
    yes = [key for key, ok in votes.items() if ok]
    best: set = set()
    subsets = chain.from_iterable(
        combinations(yes, r) for r in range(len(yes) + 1)
    )
    for subset in subsets:
        candidate = set(subset)
        if all(
            dep_map.get(key, set()) <= candidate for key in candidate
        ):
            best |= candidate
    return best


@st.composite
def dependency_graphs(draw):
    """Random (votes, dep_map) pairs, cycles very much included.

    Dependencies are drawn from the member set *plus* one phantom key
    ("gone") that never votes — a dependency the dispatcher would report
    when a read-from source is alive in some engine but outside the
    batch, which must hold its reader back.
    """
    n = draw(st.integers(min_value=1, max_value=7))
    keys = [f"t{k}" for k in range(n)]
    votes = {
        key: draw(st.booleans(), label=f"vote:{key}") for key in keys
    }
    pool = keys + ["gone"]
    dep_map = {}
    for key in keys:
        deps = draw(
            st.sets(st.sampled_from(pool), max_size=3),
            label=f"deps:{key}",
        )
        dep_map[key] = deps - {key}
    return votes, dep_map


@given(dependency_graphs())
@settings(max_examples=300, deadline=None)
def test_commit_closure_equals_brute_force(graph):
    votes, dep_map = graph
    log = GroupCommitLog(4)
    assert log.commit_closure(votes, dep_map) == brute_force_closure(
        votes, dep_map
    )


@given(dependency_graphs())
@settings(max_examples=150, deadline=None)
def test_closure_is_closed_and_votes_respected(graph):
    """Direct invariants, independent of the brute force: the result only
    contains yes-voters and is dependency-closed."""
    votes, dep_map = graph
    committed = GroupCommitLog(4).commit_closure(votes, dep_map)
    assert all(votes[key] for key in committed)
    assert all(dep_map.get(key, set()) <= committed for key in committed)


def test_mutual_dirty_read_cycle_commits_together():
    """The motivating case, pinned explicitly: a two-cycle of dirty reads
    flushes whole, and a vote-no anywhere in the cycle kills all of it."""
    log = GroupCommitLog(4)
    dep_map = {"a": {"b"}, "b": {"a"}}
    assert log.commit_closure({"a": True, "b": True}, dep_map) == {"a", "b"}
    assert log.commit_closure({"a": True, "b": False}, dep_map) == set()
    assert brute_force_closure({"a": True, "b": True}, dep_map) == {"a", "b"}

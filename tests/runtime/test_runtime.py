"""End-to-end shard runtime: invariants, determinism, contention, modes."""

import json

import pytest

from repro.engine import EngineError, RetryPolicy
from repro.runtime import ShardRuntime, TicketState
from repro.workloads.inventory import InventoryWorkload
from repro.workloads.streams import ShardedBankScenario

PARTITIONABLE = ["mvto", "si"]
SHARED = ["sgt", "2pl", "2v2pl"]


def mild_scenario(seed=5):
    return ShardedBankScenario(
        n_shards=4,
        accounts_per_shard=4,
        cross_fraction=0.2,
        hot_fraction=0.2,
        audit_every=9,
        seed=seed,
    )


def hot_scenario(seed=5):
    """Few accounts, mostly cross-shard — the adversarial regime."""
    return ShardedBankScenario(
        n_shards=4,
        accounts_per_shard=2,
        cross_fraction=0.8,
        hot_fraction=0.0,
        seed=seed,
    )


def run_bank(scenario, scheduler, n_txns=120, **kwargs):
    kwargs.setdefault("n_workers", 4)
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("seed", 11)
    runtime = ShardRuntime(
        scheduler, initial=scenario.initial_state(), **kwargs
    )
    metrics = runtime.run(scenario.transaction_stream(n_txns))
    return runtime, metrics


def check_accounting(metrics):
    assert metrics.committed + metrics.gave_up == metrics.submitted
    assert metrics.aborted == metrics.retries + metrics.gave_up
    assert metrics.group_commit.flushed == metrics.committed


class TestInvariants:
    @pytest.mark.parametrize("scheduler", PARTITIONABLE + SHARED)
    @pytest.mark.parametrize("deterministic", [True, False])
    def test_conservation_all_schedulers_both_modes(
        self, scheduler, deterministic
    ):
        scenario = mild_scenario()
        runtime, metrics = run_bank(
            scenario, scheduler, deterministic=deterministic
        )
        assert scenario.invariant_holds(runtime.final_state())
        check_accounting(metrics)
        assert metrics.committed >= 0.7 * metrics.submitted

    @pytest.mark.parametrize("scheduler", PARTITIONABLE)
    def test_conservation_under_adversarial_interleaving(self, scheduler):
        """cross_stride=1 maximally interleaves cross-shard transactions:
        rejections, cascades and flush-aborts all fire, and conservation
        still holds."""
        scenario = hot_scenario()
        runtime, metrics = run_bank(
            scenario,
            scheduler,
            n_txns=150,
            deterministic=True,
            inflight=16,
            batch_size=4,
            cross_stride=1,
        )
        assert scenario.invariant_holds(runtime.final_state())
        check_accounting(metrics)
        assert metrics.aborted > 0  # contention actually happened
        per_worker = metrics.per_worker
        assert sum(w["rejected"] for w in per_worker) > 0
        assert sum(w["external"] for w in per_worker) > 0

    def test_inventory_reconciliation(self):
        """Every order touches the shipped ledger: cross-shard heavy."""
        workload = InventoryWorkload(n_warehouses=6, seed=4)
        runtime = ShardRuntime(
            "mvto",
            initial=workload.initial_state(),
            n_workers=4,
            batch_size=6,
            deterministic=True,
            seed=1,
        )
        metrics = runtime.run(workload.transaction_stream(80))
        assert workload.invariant_holds(runtime.final_state())
        assert metrics.cross_shard > 0
        check_accounting(metrics)


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", ["mvto", "si", "sgt"])
    def test_same_seed_byte_identical_metrics(self, scheduler):
        dumps = []
        for _ in range(2):
            scenario = hot_scenario()
            runtime, metrics = run_bank(
                scenario,
                scheduler,
                deterministic=True,
                cross_stride=1,
                inflight=12,
            )
            dumps.append(json.dumps(metrics.as_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_distinct_seeds_differ(self):
        dumps = []
        for seed in (1, 2):
            scenario = hot_scenario()
            runtime, metrics = run_bank(
                scenario,
                "mvto",
                deterministic=True,
                cross_stride=1,
                inflight=12,
                seed=seed,
            )
            dumps.append(json.dumps(metrics.as_dict(), sort_keys=True))
        assert dumps[0] != dumps[1]


class TestTopology:
    def test_partitionable_gets_one_domain_per_worker(self):
        runtime, metrics = run_bank(
            mild_scenario(), "mvto", deterministic=True
        )
        assert metrics.effective_domains == 4
        assert len(runtime.workers) == 4
        assert len(metrics.per_worker) == 4
        # work actually spread across shard domains
        busy = [w for w in metrics.per_worker if w["committed"] > 0]
        assert len(busy) == 4

    def test_shared_lock_table_collapses_to_one_domain(self):
        runtime, metrics = run_bank(
            mild_scenario(), "sgt", deterministic=True
        )
        assert metrics.effective_domains == 1
        assert not metrics.partitionable
        assert len(runtime.workers) == 1
        # one conflict domain means one store partition as well
        assert runtime.store.n_shards == 1
        assert metrics.per_worker[0]["committed"] == metrics.committed

    def test_single_worker_runs_everything_locally(self):
        scenario = mild_scenario()
        runtime, metrics = run_bank(
            scenario, "mvto", n_workers=1, deterministic=True
        )
        assert metrics.cross_shard == 0
        assert metrics.single_shard == metrics.submitted
        assert scenario.invariant_holds(runtime.final_state())


class TestGroupCommitEndToEnd:
    def test_batches_respect_batch_size_threshold(self):
        _, metrics = run_bank(
            mild_scenario(), "mvto", deterministic=True, batch_size=4
        )
        gc = metrics.group_commit
        assert gc.batches >= metrics.committed / 16
        assert gc.flushed == metrics.committed

    def test_batch_size_one_is_eager_commit(self):
        scenario = mild_scenario()
        runtime, metrics = run_bank(
            scenario, "mvto", deterministic=True, batch_size=1
        )
        assert scenario.invariant_holds(runtime.final_state())
        assert metrics.group_commit.batches >= metrics.committed / 16

    def test_epoch_close_forces_flushes_and_gc(self):
        """Tiny epochs: held commits would block epoch close forever
        unless the dispatcher forces flushes; GC then prunes."""
        scenario = mild_scenario()
        runtime, metrics = run_bank(
            scenario,
            "mvto",
            n_txns=150,
            deterministic=True,
            batch_size=64,  # would starve without forcing
            epoch_max_steps=32,
        )
        assert scenario.invariant_holds(runtime.final_state())
        assert metrics.group_commit.forced > 0
        epochs = sum(w["epochs"] for w in metrics.per_worker)
        assert epochs > 0
        assert sum(w["gc_pruned"] for w in metrics.per_worker) > 0

    def test_latency_recorded_per_commit(self):
        _, metrics = run_bank(mild_scenario(), "mvto", deterministic=True)
        assert metrics.latency.count == metrics.committed
        assert metrics.latency.min <= metrics.latency.p95 <= metrics.latency.max


class TestLifecycle:
    def test_runtime_is_single_use(self):
        scenario = mild_scenario()
        runtime, _ = run_bank(scenario, "mvto", deterministic=True)
        with pytest.raises(EngineError):
            runtime.run(scenario.transaction_stream(1))

    def test_retry_budget_exhaustion_counts_gave_up(self):
        scenario = hot_scenario()
        runtime, metrics = run_bank(
            scenario,
            "mvto",
            n_txns=120,
            deterministic=True,
            cross_stride=1,
            inflight=16,
            batch_size=4,
            retry=RetryPolicy(max_attempts=1, backoff_base=0, jitter=False),
        )
        # One attempt each: every abort is a permanent drop, and the
        # invariant still holds (aborts are atomic).
        assert metrics.retries == 0
        assert metrics.gave_up == metrics.aborted
        assert metrics.gave_up > 0
        assert scenario.invariant_holds(runtime.final_state())

    def test_empty_stream(self):
        runtime = ShardRuntime(
            "mvto", initial={"x": 0}, n_workers=2, deterministic=True
        )
        metrics = runtime.run(iter(()))
        assert metrics.submitted == 0
        assert metrics.committed == 0

    def test_ticket_states_terminal(self):
        runtime, metrics = run_bank(
            mild_scenario(), "mvto", deterministic=True
        )
        assert not runtime._inflight
        assert len(runtime.group_commit) == 0


class TestThreaded:
    """Real threads: same invariants, nondeterministic interleaving."""

    @pytest.mark.parametrize("scheduler", PARTITIONABLE)
    def test_threaded_conservation_and_accounting(self, scheduler):
        scenario = mild_scenario()
        runtime, metrics = run_bank(
            scenario, scheduler, n_txns=150, deterministic=False
        )
        assert scenario.invariant_holds(runtime.final_state())
        check_accounting(metrics)

    def test_threaded_adversarial_stride(self):
        scenario = hot_scenario()
        runtime, metrics = run_bank(
            scenario,
            "mvto",
            n_txns=120,
            deterministic=False,
            cross_stride=1,
            inflight=16,
            batch_size=4,
        )
        assert scenario.invariant_holds(runtime.final_state())
        check_accounting(metrics)

    def test_threaded_shared_lock_table(self):
        scenario = mild_scenario()
        runtime, metrics = run_bank(
            scenario, "2v2pl", n_txns=100, deterministic=False
        )
        assert scenario.invariant_holds(runtime.final_state())
        check_accounting(metrics)

"""The single-version store."""

from repro.storage.svstore import SingleVersionStore, WriteRecord


class TestSingleVersionStore:
    def test_initial_values(self):
        store = SingleVersionStore({"x": 5})
        assert store.read("x") == 5

    def test_unknown_entity_reads_symbolic_initial(self):
        store = SingleVersionStore()
        assert store.read("y") == ("init", "y")

    def test_write_overwrites_in_place(self):
        store = SingleVersionStore({"x": 1})
        store.write("x", 1, 2, position=0)
        store.write("x", 2, 3, position=1)
        assert store.read("x") == 3
        # Unlike the multiversion store, the old value is gone.
        assert store.final_state() == {"x": 3}

    def test_log_records_every_write(self):
        store = SingleVersionStore()
        store.write("x", 1, "a", 0)
        store.write("y", 2, "b", 3)
        assert store.log == [
            WriteRecord("x", 1, "a", 0),
            WriteRecord("y", 2, "b", 3),
        ]

"""Schedule execution: Herbrand semantics validate the theory machinery."""

import random

from repro.classes.mvcsr import mvcsr_serialization, mvcsr_version_function
from repro.classes.mvsr import find_mvsr_serialization
from repro.model.enumeration import random_schedule
from repro.model.parsing import parse_schedule
from repro.model.version_functions import VersionFunction
from repro.storage.executor import (
    execute,
    execute_serial,
    herbrand_value,
    views_match,
)
from repro.storage.svstore import SingleVersionStore


class TestExecution:
    def test_herbrand_read_values(self):
        s = parse_schedule("W1(x) R2(x)")
        result = execute(s)
        assert result.read_values[1] == herbrand_value(1, 0, [])

    def test_version_function_serves_old_version(self):
        s = parse_schedule("W1(x) W2(x) R3(x)")
        old = execute(s, VersionFunction({2: 0}))
        new = execute(s)
        assert old.read_values[2] == herbrand_value(1, 0, [])
        assert new.read_values[2] == herbrand_value(2, 0, [])

    def test_program_execution(self):
        s = parse_schedule("R1(x) W1(x)")
        result = execute(
            s,
            programs={1: lambda k, reads: reads[0] + 1},
            initial={"x": 10},
        )
        assert result.final_state["x"] == 11

    def test_views_and_final_state(self):
        s = parse_schedule("W1(x) R2(x) W2(y)")
        result = execute(s)
        assert result.view(2) == (herbrand_value(1, 0, []),)
        assert result.final_state["y"] == herbrand_value(
            2, 0, [herbrand_value(1, 0, [])]
        )

    def test_store_keeps_all_versions(self):
        s = parse_schedule("W1(x) W2(x) W3(x)")
        result = execute(s)
        assert result.store.version_count() == 4


class TestSemanticTheorems:
    """The paper's equivalences, stated over executed values."""

    def test_mvsr_witness_execution_matches_serial(self):
        """(s, V) view-equivalent to (r, V_r) means: every transaction
        reads exactly the same values in both executions.

        Restricted to the standard model (no transaction writes an entity
        twice): the paper's READ-FROM relation is transaction-granular,
        so with repeated writes a view-equivalent witness may serve a
        *different write* of the same source transaction.
        """
        from repro.classes.hierarchy import writes_entities_once

        rng = random.Random(0)
        checked = 0
        for _ in range(150):
            s = random_schedule(3, ["x", "y"], 2, rng)
            if not writes_entities_once(s):
                continue
            found = find_mvsr_serialization(s)
            if found is None:
                continue
            order, vf = found
            multi = execute(s, vf)
            serial = execute_serial(s, order)
            assert views_match(multi, serial), str(s)
            checked += 1
        assert checked > 30

    def test_theorem3_version_function_execution(self):
        """Theorem 3 constructively: the MVCG version function makes the
        execution agree with the topological serial execution."""
        from repro.classes.hierarchy import writes_entities_once

        rng = random.Random(1)
        checked = 0
        for _ in range(150):
            s = random_schedule(3, ["x", "y"], 2, rng)
            if not writes_entities_once(s):
                continue
            vf = mvcsr_version_function(s)
            if vf is None:
                continue
            order = mvcsr_serialization(s)
            assert views_match(execute(s, vf), execute_serial(s, order))
            checked += 1
        assert checked > 30

    def test_single_version_store_matches_standard_vf(self):
        """Executing with the standard version function equals a plain
        single-version store run."""
        rng = random.Random(2)
        for _ in range(60):
            s = random_schedule(3, ["x", "y"], 2, rng)
            multi = execute(s)
            sv = SingleVersionStore()
            reads: dict[int, object] = {}
            reads_so_far: dict[object, list] = {}
            counters: dict[object, int] = {}
            for i, step in enumerate(s):
                if step.is_read:
                    value = sv.read(step.entity)
                    reads[i] = value
                    reads_so_far.setdefault(step.txn, []).append(value)
                else:
                    k = counters.get(step.txn, 0)
                    counters[step.txn] = k + 1
                    value = herbrand_value(
                        step.txn, k, reads_so_far.get(step.txn, [])
                    )
                    sv.write(step.entity, step.txn, value, i)
            assert reads == multi.read_values
            for entity, value in sv.final_state().items():
                assert multi.final_state[entity] == value

"""The multiversion store."""

import pytest

from repro.model.schedules import T_INIT
from repro.storage.mvstore import MultiversionStore


class TestVersionChains:
    def test_initial_version(self):
        store = MultiversionStore()
        v = store.latest("x")
        assert v.is_initial and v.writer == T_INIT
        assert v.value == ("init", "x")

    def test_custom_initial_values(self):
        store = MultiversionStore({"x": 42})
        assert store.latest("x").value == 42

    def test_install_appends(self):
        store = MultiversionStore()
        store.install("x", 1, "v1", position=0)
        store.install("x", 2, "v2", position=3)
        chain = store.versions("x")
        assert [v.value for v in chain] == [("init", "x"), "v1", "v2"]
        assert store.latest("x").value == "v2"

    def test_at_position(self):
        store = MultiversionStore()
        store.install("x", 1, "v1", position=0)
        assert store.at_position("x", 0).value == "v1"
        assert store.at_position("x", None).is_initial

    def test_at_position_missing_raises(self):
        store = MultiversionStore()
        with pytest.raises(KeyError):
            store.at_position("x", 5)

    def test_latest_by_writer(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        store.install("x", 2, "b", 1)
        store.install("x", 1, "c", 2)
        assert store.latest_by("x", 1).value == "c"
        with pytest.raises(KeyError):
            store.latest_by("x", 9)

    def test_old_versions_remain_readable(self):
        """The defining property of the multiversion store."""
        store = MultiversionStore()
        store.install("x", 1, "old", 0)
        store.install("x", 2, "new", 1)
        assert store.at_position("x", 0).value == "old"

    def test_final_state_and_counts(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        store.install("y", 2, "b", 1)
        assert store.final_state() == {"x": "a", "y": "b"}
        assert store.version_count() == 4  # two initials + two installed
        assert set(store.entities()) == {"x", "y"}

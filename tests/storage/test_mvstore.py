"""The multiversion store."""

import pytest

from repro.model.schedules import T_INIT
from repro.storage.mvstore import MultiversionStore


class TestVersionChains:
    def test_initial_version(self):
        store = MultiversionStore()
        v = store.latest("x")
        assert v.is_initial and v.writer == T_INIT
        assert v.value == ("init", "x")

    def test_custom_initial_values(self):
        store = MultiversionStore({"x": 42})
        assert store.latest("x").value == 42

    def test_install_appends(self):
        store = MultiversionStore()
        store.install("x", 1, "v1", position=0)
        store.install("x", 2, "v2", position=3)
        chain = store.versions("x")
        assert [v.value for v in chain] == [("init", "x"), "v1", "v2"]
        assert store.latest("x").value == "v2"

    def test_at_position(self):
        store = MultiversionStore()
        store.install("x", 1, "v1", position=0)
        assert store.at_position("x", 0).value == "v1"
        assert store.at_position("x", None).is_initial

    def test_at_position_missing_raises(self):
        store = MultiversionStore()
        with pytest.raises(KeyError):
            store.at_position("x", 5)

    def test_latest_by_writer(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        store.install("x", 2, "b", 1)
        store.install("x", 1, "c", 2)
        assert store.latest_by("x", 1).value == "c"
        with pytest.raises(KeyError):
            store.latest_by("x", 9)

    def test_old_versions_remain_readable(self):
        """The defining property of the multiversion store."""
        store = MultiversionStore()
        store.install("x", 1, "old", 0)
        store.install("x", 2, "new", 1)
        assert store.at_position("x", 0).value == "old"

    def test_final_state_and_counts(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        store.install("y", 2, "b", 1)
        assert store.final_state() == {"x": "a", "y": "b"}
        assert store.version_count() == 4  # two initials + two installed
        assert set(store.entities()) == {"x", "y"}


class TestRemove:
    def test_remove_updates_all_lookup_paths(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        doomed = store.install("x", 2, "b", 1)
        store.remove(doomed)
        assert store.latest("x").value == "a"
        assert store.version_count() == 2
        with pytest.raises(KeyError):
            store.at_position("x", 1)
        with pytest.raises(KeyError):
            store.latest_by("x", 2)

    def test_remove_mid_chain_version(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        mid = store.install("x", 2, "b", 1)
        store.install("x", 3, "c", 2)
        store.remove(mid)
        assert [v.value for v in store.versions("x")] == [
            ("init", "x"), "a", "c",
        ]

    def test_latest_by_falls_back_to_writers_earlier_version(self):
        store = MultiversionStore()
        store.install("x", 1, "a", 0)
        newer = store.install("x", 1, "b", 1)
        store.remove(newer)
        assert store.latest_by("x", 1).value == "a"

    def test_remove_initial_version_rejected(self):
        store = MultiversionStore()
        with pytest.raises(ValueError):
            store.remove(store.initial("x"))

    def test_remove_unknown_version_raises(self):
        store = MultiversionStore()
        v = store.install("x", 1, "a", 0)
        store.remove(v)
        with pytest.raises(KeyError):
            store.remove(v)


class TestPrune:
    def test_prune_keeps_base_and_later_versions(self):
        store = MultiversionStore()
        for k in range(4):
            store.install("x", k, f"v{k}", k)
        assert store.prune_before("x", 2) == 2  # initial and v0
        assert [v.value for v in store.versions("x")] == ["v1", "v2", "v3"]
        assert store.at_position("x", 1).value == "v1"
        assert store.version_count() == 3

    def test_prune_everything_leaves_latest(self):
        store = MultiversionStore()
        for k in range(4):
            store.install("x", k, f"v{k}", k)
        assert store.prune_before("x", 100) == 4
        assert [v.value for v in store.versions("x")] == ["v3"]

    def test_prune_untouched_entity_is_noop(self):
        store = MultiversionStore()
        assert store.prune_before("ghost", 5) == 0


class TestIndexScaling:
    def test_point_lookups_on_a_long_chain(self):
        """at_position / latest_by are index hits, not chain scans; this
        guards the behavior (the benchmark guards the speed)."""
        store = MultiversionStore()
        for k in range(500):
            store.install("x", k % 7, k, k)
        assert store.at_position("x", 123).value == 123
        assert store.latest_by("x", 3).value == 493  # 493 % 7 == 3
        assert store.at_position("x", None).is_initial

"""Sharded multiversion store: routing, parity, balance."""

import pytest

from repro.storage.mvstore import MultiversionStore
from repro.storage.sharded import ShardedMultiversionStore, shard_of


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for entity in ["x", "acct0", "shipped", "stock3"]:
            k = shard_of(entity, 8)
            assert 0 <= k < 8
            assert shard_of(entity, 8) == k  # stable across calls

    def test_initial_values_route_to_owning_shard(self):
        initial = {f"e{k}": k for k in range(20)}
        store = ShardedMultiversionStore(4, initial)
        for entity, value in initial.items():
            assert store.latest(entity).value == value
            owner = store.shard_for(entity)
            assert owner.latest(entity).value == value

    def test_single_shard_degenerates_to_one_store(self):
        store = ShardedMultiversionStore(1)
        store.install("x", 1, "v", 0)
        assert store.shards[0].version_count() == store.version_count()

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedMultiversionStore(0)


class TestInterfaceParity:
    def apply_ops(self, store):
        store.install("x", 1, "a", 0)
        store.install("y", 2, "b", 1)
        store.install("x", 2, "c", 2)
        v = store.install("x", 1, "d", 3)
        store.remove(v)
        store.prune_before("x", 2)
        return {
            "latest_x": store.latest("x").value,
            "at_pos": store.at_position("x", 2).value,
            "latest_by": store.latest_by("x", 1).value,
            "count": store.version_count(),
            "final": store.final_state(),
            "entities": sorted(store.entities()),
            "versions_x": [v.value for v in store.versions("x")],
        }

    def test_matches_plain_store_on_same_operations(self):
        plain = self.apply_ops(MultiversionStore({"x": 0, "y": 0}))
        sharded = self.apply_ops(
            ShardedMultiversionStore(4, {"x": 0, "y": 0})
        )
        assert plain == sharded

    def test_missing_lookups_raise_like_plain_store(self):
        store = ShardedMultiversionStore(4)
        with pytest.raises(KeyError):
            store.at_position("x", 99)
        with pytest.raises(KeyError):
            store.latest_by("x", "nobody")


class TestBalance:
    def test_shard_sizes_sum_to_version_count(self):
        store = ShardedMultiversionStore(4)
        for k in range(40):
            store.install(f"e{k}", 1, k, k)
        assert sum(store.shard_sizes()) == store.version_count()

    def test_entities_spread_across_shards(self):
        store = ShardedMultiversionStore(4)
        for k in range(40):
            store.install(f"e{k}", 1, k, k)
        occupied = [size for size in store.shard_sizes() if size > 0]
        assert len(occupied) == 4  # crc32 spreads 40 names over 4 shards

"""The transaction manager: scheduler + store integration."""

from repro.model.parsing import parse_schedule
from repro.schedulers.mvto import MVTOScheduler
from repro.schedulers.sgt import SGTScheduler
from repro.storage.txn_manager import TransactionManager


class TestRun:
    def test_accepted_schedule_executes(self):
        s = parse_schedule("R1(x) W1(x) R2(x)")
        tm = TransactionManager(
            MVTOScheduler(),
            programs={1: lambda k, reads: reads[0] + 1},
            initial={"x": 1},
        )
        outcome = tm.run(s)
        assert outcome.accepted
        assert outcome.final_state["x"] == 2
        assert outcome.scheduler_name == "mvto"

    def test_rejected_schedule_does_not_execute(self):
        s = parse_schedule("R1(x) R2(x) W1(x) W2(x)")
        tm = TransactionManager(SGTScheduler())
        outcome = tm.run(s)
        assert not outcome.accepted
        assert outcome.execution is None
        assert outcome.final_state is None
        assert outcome.accepted_steps < len(s)

    def test_multiversion_reads_follow_scheduler_assignment(self):
        # MVTO serves T1's late read of y the initial version.
        s = parse_schedule("R1(x) W2(y) R1(y) W1(x)")
        tm = TransactionManager(MVTOScheduler(), initial={"x": 0, "y": 0})
        outcome = tm.run(s)
        assert outcome.accepted
        assert outcome.execution.read_values[2] == 0  # initial y, not W2's

"""Placeholder versions: lifecycle, counting, sharded aggregation."""

import pytest

from repro.storage.mvstore import (
    MultiversionStore,
    PlaceholderState,
    UNWRITTEN,
)
from repro.storage.sharded import ShardedMultiversionStore


class TestLifecycle:
    def test_reserve_fixes_chain_position(self):
        store = MultiversionStore({"x": 1})
        slot = store.reserve("x", "A", 0)
        assert slot.is_placeholder
        assert slot.state is PlaceholderState.PENDING
        assert slot.value is UNWRITTEN
        assert store.at_position("x", 0) is slot
        # A later normal install lands after the reserved slot.
        later = store.install("x", "B", 9, 1)
        assert store.versions("x")[-2:] == [slot, later]

    def test_fill_publishes_and_wakes(self):
        store = MultiversionStore()
        slot = store.reserve("x", "A", 0)
        assert not slot.decided
        store.fill(slot, 42)
        assert slot.state is PlaceholderState.FILLED
        assert slot.materialized
        assert slot.value == 42
        assert slot.wait(0)  # event already set

    def test_fill_twice_is_a_bug(self):
        store = MultiversionStore()
        slot = store.reserve("x", "A", 0)
        store.fill(slot, 1)
        with pytest.raises(ValueError):
            store.fill(slot, 2)

    def test_poison_is_idempotent_and_terminal(self):
        store = MultiversionStore()
        slot = store.reserve("x", "A", 0)
        store.poison(slot)
        store.poison(slot)  # idempotent
        assert slot.state is PlaceholderState.POISONED
        assert slot.wait(0)
        with pytest.raises(ValueError):
            store.fill(slot, 1)

    def test_poison_after_fill_is_a_bug(self):
        store = MultiversionStore()
        slot = store.reserve("x", "A", 0)
        store.fill(slot, 1)
        with pytest.raises(ValueError):
            store.poison(slot)

    def test_lifecycle_methods_reject_normal_versions(self):
        store = MultiversionStore()
        version = store.install("x", "A", 1, 0)
        with pytest.raises(ValueError):
            store.fill(version, 2)
        with pytest.raises(ValueError):
            store.poison(version)

    def test_identity_semantics(self):
        store = MultiversionStore()
        a = store.reserve("x", "A", 0)
        b = store.reserve("x", "A", 1)
        assert a != b
        assert len({a, b}) == 2
        store.fill(a, 5)
        # Hash is stable across the fill (identity, not field hash).
        assert a in {a, b}


class TestCounting:
    """Regression: aggregation must skip unmaterialized placeholders."""

    def test_version_count_skips_pending(self):
        store = MultiversionStore({"x": 1})
        store.install("x", "A", 2, 0)
        assert store.version_count() == 2
        slot = store.reserve("x", "B", 1)
        assert store.version_count() == 2
        assert store.placeholder_count() == 1
        store.fill(slot, 3)
        assert store.version_count() == 3
        assert store.placeholder_count() == 0

    def test_removed_poisoned_slot_rebalances_counts(self):
        store = MultiversionStore({"x": 1})
        slot = store.reserve("x", "A", 0)
        store.poison(slot)
        assert store.version_count() == 1
        assert store.placeholder_count() == 1
        store.remove(slot)
        assert store.version_count() == 1
        assert store.placeholder_count() == 0
        assert store.versions("x") == [store.initial("x")]

    def test_final_state_skips_unmaterialized_tails(self):
        store = MultiversionStore({"x": 1})
        store.install("x", "A", 2, 0)
        store.reserve("x", "B", 1)
        assert store.final_state() == {"x": 2}


class TestShardedAggregation:
    """Regression: sharded stats use the same skip rule as the shards."""

    def build(self):
        store = ShardedMultiversionStore(4, {f"e{k}": k for k in range(8)})
        slots = [
            store.reserve(f"e{k}", f"w{k}", k) for k in range(8)
        ]
        return store, slots

    def test_version_count_and_placeholder_count(self):
        store, slots = self.build()
        assert store.version_count() == 8  # initials only
        assert store.placeholder_count() == 8
        for slot in slots[:3]:
            store.fill(slot, 0)
        assert store.version_count() == 11
        assert store.placeholder_count() == 5

    def test_shard_sizes_sum_to_version_count(self):
        store, slots = self.build()
        store.fill(slots[0], 0)
        assert sum(store.shard_sizes()) == store.version_count()

    def test_snapshot_stats_split_versions_and_placeholders(self):
        store, slots = self.build()
        store.fill(slots[0], 0)
        stats = store.snapshot_stats()
        assert sum(row["versions"] for row in stats) == store.version_count()
        assert (
            sum(row["placeholders"] for row in stats)
            == store.placeholder_count()
            == 7
        )

    def test_final_state_skips_pending_slots(self):
        store, slots = self.build()
        store.fill(slots[2], 99)
        state = store.final_state()
        assert state["e2"] == 99
        assert state["e0"] == 0  # pending slot skipped, base shows

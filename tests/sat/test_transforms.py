"""3-SAT and monotone transforms: equisatisfiability against brute force."""

import itertools
import random

from repro.sat.brute import solve_bruteforce
from repro.sat.cnf import CNF, neg, pos
from repro.sat.transforms import (
    is_monotone,
    restricted_satisfiability_instance,
    to_3sat,
    to_monotone,
)


def _random_formula(rng: random.Random, max_width: int = 5) -> CNF:
    variables = [f"v{k}" for k in range(rng.randint(1, 5))]
    clauses = []
    for _ in range(rng.randint(1, 6)):
        width = rng.randint(1, max_width)
        clauses.append(
            tuple(
                (rng.choice(variables), rng.random() < 0.5)
                for _ in range(width)
            )
        )
    return CNF(clauses)


class TestIsMonotone:
    def test_accepts_monotone(self):
        f = CNF.of([[pos("a"), pos("b")], [neg("a"), neg("c"), neg("b")]])
        assert is_monotone(f)

    def test_rejects_mixed_clause(self):
        assert not is_monotone(CNF.of([[pos("a"), neg("b")]]))

    def test_rejects_wrong_width(self):
        assert not is_monotone(CNF.of([[pos("a")]]))
        assert is_monotone(CNF.of([[pos("a")]]), min_clause=1)
        four = CNF.of([[pos("a"), pos("b"), pos("c"), pos("d")]])
        assert not is_monotone(four)


class TestTo3Sat:
    def test_short_clauses_unchanged(self):
        f = CNF.of([[pos("a"), neg("b")]])
        assert to_3sat(f).clauses == f.clauses

    def test_long_clause_split(self):
        f = CNF.of([[pos(f"v{k}") for k in range(6)]])
        g = to_3sat(f)
        assert all(len(c) <= 3 for c in g.clauses)
        assert len(g.clauses) > 1

    def test_equisatisfiable_random(self):
        rng = random.Random(0)
        for _ in range(150):
            f = _random_formula(rng)
            g = to_3sat(f)
            assert (solve_bruteforce(f) is None) == (
                solve_bruteforce(g) is None
            )

    def test_unsat_preserved(self):
        # (a|b|c|d) & ~a & ~b & ~c & ~d
        f = CNF.of(
            [[pos("a"), pos("b"), pos("c"), pos("d")]]
            + [[neg(v)] for v in "abcd"]
        )
        assert solve_bruteforce(to_3sat(f)) is None


class TestToMonotone:
    def test_output_is_monotone(self):
        f = CNF.of([[pos("a"), neg("b"), pos("c")], [neg("a")]])
        g = to_monotone(f)
        assert is_monotone(g)

    def test_equisatisfiable_random(self):
        rng = random.Random(1)
        for _ in range(150):
            f = _random_formula(rng, max_width=3)
            g = to_monotone(f)
            assert (solve_bruteforce(f) is None) == (
                solve_bruteforce(g) is None
            )

    def test_monotone_model_projects_back(self):
        f = CNF.of([[pos("a"), neg("b")], [pos("b"), pos("c")]])
        g = to_monotone(f)
        model = solve_bruteforce(g)
        assert model is not None
        projected = {
            v: model[("mono+", v)] for v in f.variables
        }
        assert f.evaluate(projected)

    def test_empty_clause_encoded_unsat(self):
        f = CNF.of([[]])
        g = to_monotone(f)
        assert is_monotone(g)
        assert solve_bruteforce(g) is None

    def test_exhaustive_tiny(self):
        # All formulas of <=2 clauses of width <=2 over two variables.
        lits = [pos("a"), neg("a"), pos("b"), neg("b")]
        clauses = [
            tuple(c)
            for w in (1, 2)
            for c in itertools.product(lits, repeat=w)
        ]
        for combo in itertools.combinations(clauses, 2):
            f = CNF(list(combo))
            g = restricted_satisfiability_instance(f)
            assert is_monotone(g)
            assert (solve_bruteforce(f) is None) == (
                solve_bruteforce(g) is None
            )

"""The DPLL solver, cross-checked against brute force."""

import itertools
import random

from repro.sat.brute import count_models, solve_bruteforce
from repro.sat.cnf import CNF, neg, pos
from repro.sat.solver import is_satisfiable, solve


class TestBasics:
    def test_empty_formula_sat(self):
        assert solve(CNF()) == {}

    def test_empty_clause_unsat(self):
        assert solve(CNF.of([[]])) is None

    def test_unit(self):
        model = solve(CNF.of([[pos("a")]]))
        assert model == {"a": True}

    def test_contradiction(self):
        assert solve(CNF.of([[pos("a")], [neg("a")]])) is None

    def test_tautological_clause_dropped(self):
        model = solve(CNF.of([[pos("a"), neg("a")], [pos("b")]]))
        assert model is not None and model["b"] is True

    def test_model_satisfies(self):
        f = CNF.of(
            [
                [pos("a"), pos("b"), pos("c")],
                [neg("a"), neg("b")],
                [neg("b"), neg("c")],
                [pos("b"), neg("c")],
            ]
        )
        model = solve(f)
        assert model is not None
        assert f.evaluate(model)

    def test_pigeonhole_2_into_1_unsat(self):
        # p_ij: pigeon i in hole j; 2 pigeons, 1 hole.
        f = CNF.of(
            [
                [pos(("p", 1, 1))],
                [pos(("p", 2, 1))],
                [neg(("p", 1, 1)), neg(("p", 2, 1))],
            ]
        )
        assert solve(f) is None

    def test_pigeonhole_4_into_3_unsat(self):
        f = CNF()
        holes = range(3)
        pigeons = range(4)
        for i in pigeons:
            f.clauses.append(tuple(pos(("p", i, j)) for j in holes))
        for j in holes:
            for i1, i2 in itertools.combinations(pigeons, 2):
                f.add_clause(neg(("p", i1, j)), neg(("p", i2, j)))
        assert solve(f) is None


class TestRandomCrossCheck:
    def test_agrees_with_bruteforce(self):
        rng = random.Random(0)
        for _ in range(400):
            n_vars = rng.randint(1, 6)
            variables = [f"v{k}" for k in range(n_vars)]
            clauses = []
            for _ in range(rng.randint(1, 10)):
                width = rng.randint(1, 3)
                clause = tuple(
                    (rng.choice(variables), rng.random() < 0.5)
                    for _ in range(width)
                )
                clauses.append(clause)
            f = CNF(clauses)
            brute = solve_bruteforce(f)
            model = solve(f)
            assert (model is None) == (brute is None)
            if model is not None:
                full = dict(model)
                for v in f.variables:
                    full.setdefault(v, False)
                assert f.evaluate(full)

    def test_count_models_sanity(self):
        f = CNF.of([[pos("a"), pos("b")]])
        assert count_models(f) == 3

    def test_is_satisfiable_decision(self):
        assert is_satisfiable(CNF.of([[pos("a")]]))
        assert not is_satisfiable(CNF.of([[pos("a")], [neg("a")]]))

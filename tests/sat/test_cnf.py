"""CNF data structure."""

import pytest

from repro.sat.cnf import CNF, neg, pos


class TestCNF:
    def test_add_clause_and_iter(self):
        f = CNF()
        f.add_clause(pos("a"), neg("b"))
        assert len(f) == 1
        assert list(f) == [(("a", True), ("b", False))]

    def test_variables_first_appearance_order(self):
        f = CNF.of([[pos("b")], [pos("a"), neg("b")]])
        assert f.variables == ["b", "a"]

    def test_evaluate_true(self):
        f = CNF.of([[pos("a"), pos("b")], [neg("a")]])
        assert f.evaluate({"a": False, "b": True})

    def test_evaluate_false(self):
        f = CNF.of([[pos("a")], [neg("a")]])
        assert not f.evaluate({"a": True})
        assert not f.evaluate({"a": False})

    def test_evaluate_empty_clause_false(self):
        assert not CNF.of([[]]).evaluate({})

    def test_evaluate_empty_formula_true(self):
        assert CNF().evaluate({})

    def test_evaluate_missing_variable_raises(self):
        with pytest.raises(KeyError):
            CNF.of([[pos("a")]]).evaluate({})

    def test_to_ints_polarity(self):
        f = CNF.of([[pos("a"), neg("b")], [neg("a")]])
        ints, index = f.to_ints()
        a, b = index["a"], index["b"]
        assert ints == [[a, -b], [-a]]

    def test_str_rendering(self):
        f = CNF.of([[pos("a"), neg("b")]])
        assert str(f) == "(a | ~b)"

"""Parsing and formatting of the paper's notation."""

import pytest

from repro.model.parsing import (
    format_schedule,
    format_schedule_by_transaction,
    parse_schedule,
    parse_transaction,
)
from repro.model.steps import read, write


class TestParseSchedule:
    def test_numeric_ids_become_ints(self):
        s = parse_schedule("R1(x) W2(y)")
        assert s[0].txn == 1 and s[1].txn == 2

    def test_letter_ids_stay_strings(self):
        s = parse_schedule("RA(x) WB(y)")
        assert s[0].txn == "A" and s[1].txn == "B"

    def test_commas_and_semicolons(self):
        s = parse_schedule("R1(x), W1(x); R2(x)")
        assert len(s) == 3

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_schedule("R1(x) garbage W2(y)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_schedule("R1(x) oops")

    def test_empty_schedule(self):
        assert len(parse_schedule("")) == 0

    def test_primed_entities(self):
        s = parse_schedule("R1(b') W2(b')")
        assert s[0].entity == "b'"

    def test_roundtrip(self):
        text = "RA(x) WA(x) RB(x) WB(y)"
        assert format_schedule(parse_schedule(text)) == text


class TestParseTransaction:
    def test_without_ids(self):
        t = parse_transaction("A", "R(x) W(x) W(y)")
        assert t.steps == (read("A", "x"), write("A", "x"), write("A", "y"))

    def test_with_matching_ids(self):
        t = parse_transaction(1, "R1(x) W1(x)")
        assert t.txn == 1 and len(t) == 2

    def test_mismatched_id_rejected(self):
        with pytest.raises(ValueError):
            parse_transaction("A", "RB(x)")


class TestFigureFormatting:
    def test_by_transaction_rows(self):
        s = parse_schedule("RA(x) RB(x) WA(x) WB(x)")
        rendered = format_schedule_by_transaction(s)
        lines = rendered.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("A:")
        assert "RA(x)" in lines[0] and "WA(x)" in lines[0]
        assert "RB(x)" in lines[1]
        # Column alignment: B's read appears to the right of A's read.
        assert lines[1].index("RB(x)") > lines[0].index("RA(x)")

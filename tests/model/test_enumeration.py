"""Exhaustive and random schedule generation."""

import random
from math import comb

from repro.model.enumeration import (
    all_systems,
    all_transactions,
    count_interleavings,
    interleavings,
    random_interleaving,
    random_schedule,
    random_system,
    random_transaction,
)
from repro.model.transactions import Transaction, TransactionSystem


def _sys(*bodies):
    return TransactionSystem.of(
        Transaction.build(i + 1, *body) for i, body in enumerate(bodies)
    )


class TestInterleavings:
    def test_count_matches_multinomial(self):
        system = _sys([("R", "x"), ("W", "x")], [("R", "y")])
        schedules = list(interleavings(system))
        assert len(schedules) == comb(3, 2)
        assert count_interleavings(system) == len(schedules)

    def test_all_distinct(self):
        system = _sys([("R", "x"), ("W", "x")], [("R", "x"), ("W", "x")])
        schedules = [s.steps for s in interleavings(system)]
        assert len(schedules) == len(set(schedules)) == comb(4, 2)

    def test_each_is_a_shuffle(self):
        system = _sys([("R", "x"), ("W", "x")], [("W", "y")])
        for s in interleavings(system):
            assert s.is_shuffle_of(system)

    def test_empty_system(self):
        assert list(interleavings(TransactionSystem.of([]))) == [
            s for s in interleavings(TransactionSystem.of([]))
        ]
        assert count_interleavings(TransactionSystem.of([])) == 1


class TestRandomGeneration:
    def test_random_interleaving_is_shuffle(self):
        rng = random.Random(0)
        system = _sys(
            [("R", "x"), ("W", "x")], [("R", "y"), ("W", "y")], [("W", "z")]
        )
        for _ in range(20):
            assert random_interleaving(system, rng).is_shuffle_of(system)

    def test_random_interleaving_reproducible(self):
        system = _sys([("R", "x"), ("W", "x")], [("R", "y")])
        a = random_interleaving(system, random.Random(7))
        b = random_interleaving(system, random.Random(7))
        assert a == b

    def test_random_transaction_shape(self):
        rng = random.Random(1)
        t = random_transaction(1, ["x", "y"], 5, rng)
        assert len(t) == 5
        assert all(s.entity in ("x", "y") for s in t)

    def test_read_fraction_extremes(self):
        rng = random.Random(2)
        all_reads = random_transaction(1, ["x"], 10, rng, read_fraction=1.0)
        assert all(s.is_read for s in all_reads)
        all_writes = random_transaction(1, ["x"], 10, rng, read_fraction=0.0)
        assert all(s.is_write for s in all_writes)

    def test_zipf_skew_prefers_hot_entities(self):
        rng = random.Random(3)
        entities = [f"e{k}" for k in range(10)]
        t = random_transaction(1, entities, 400, rng, zipf_skew=2.0)
        hot = sum(1 for s in t if s.entity == "e0")
        cold = sum(1 for s in t if s.entity == "e9")
        assert hot > cold

    def test_random_system_and_schedule(self):
        rng = random.Random(4)
        system = random_system(3, ["x", "y"], 2, rng)
        assert len(system) == 3
        s = random_schedule(3, ["x", "y"], 2, rng)
        assert len(s) == 6


class TestExhaustiveSpaces:
    def test_all_transactions_count(self):
        # 2 ops x 2 entities per step, 2 steps -> 16 transactions.
        assert len(list(all_transactions(1, ["x", "y"], 2))) == 16

    def test_all_systems_count(self):
        # each of 2 txns drawn from 4 one-step bodies over one entity
        assert len(list(all_systems(2, ["x"], 1))) == 4

"""Schedule structure, padding, and query helpers."""

import pytest

from repro.model.parsing import parse_schedule
from repro.model.schedules import Schedule, T_FINAL, T_INIT
from repro.model.steps import read, write
from repro.model.transactions import Transaction


class TestConstruction:
    def test_of_and_len(self):
        s = Schedule.of([read(1, "x"), write(2, "x")])
        assert len(s) == 2
        assert s[0] == read(1, "x")

    def test_serial_constructor(self):
        a = Transaction.build("A", ("R", "x"), ("W", "x"))
        b = Transaction.build("B", ("R", "x"))
        s = Schedule.serial([a, b])
        assert str(s) == "RA(x) WA(x) RB(x)"

    def test_slicing_returns_schedule(self):
        s = parse_schedule("R1(x) W1(x) R2(x)")
        assert isinstance(s[:2], Schedule)
        assert len(s[:2]) == 2

    def test_concatenation(self):
        s = parse_schedule("R1(x)") + parse_schedule("W2(x)")
        assert str(s) == "R1(x) W2(x)"


class TestStructure:
    def test_txn_ids_first_appearance_order(self):
        s = parse_schedule("R2(x) R1(y) W2(x) W3(z)")
        assert s.txn_ids == (2, 1, 3)

    def test_projection_preserves_order(self):
        s = parse_schedule("R1(x) R2(x) W1(y) W2(y) W1(x)")
        assert str(s.projection(1)) == "R1(x) W1(y) W1(x)"

    def test_transaction_system_roundtrip(self):
        s = parse_schedule("R1(x) R2(x) W1(y) W2(y)")
        system = s.transaction_system()
        assert s.is_shuffle_of(system)

    def test_is_shuffle_of_rejects_other_system(self):
        s = parse_schedule("R1(x) W1(x)")
        other = parse_schedule("R1(x) W1(y)").transaction_system()
        assert not s.is_shuffle_of(other)

    def test_entities(self):
        s = parse_schedule("R1(x) W2(y)")
        assert s.entities == {"x", "y"}


class TestQueries:
    def test_writes_of(self):
        s = parse_schedule("W1(x) R2(x) W3(x) W1(y)")
        assert s.writes_of("x") == (0, 2)
        assert s.writes_of("missing") == ()

    def test_last_write_before(self):
        s = parse_schedule("W1(x) R2(x) W3(x) R2(x)")
        assert s.last_write_before(1, "x") == 0
        assert s.last_write_before(3, "x") == 2
        assert s.last_write_before(0, "x") is None

    def test_writes_before(self):
        s = parse_schedule("W1(x) W2(x) R3(x)")
        assert s.writes_before(2, "x") == [0, 1]

    def test_final_writer(self):
        s = parse_schedule("W1(x) W2(x) R3(y)")
        assert s.final_writer("x") == 2
        assert s.final_writer("y") == T_INIT


class TestPadding:
    def test_padded_structure(self):
        s = parse_schedule("R1(x) W1(y)")
        p = s.padded()
        assert p[0].txn == T_INIT and p[0].is_write
        assert p[-1].txn == T_FINAL and p[-1].is_read
        # T0 writes all entities, Tf reads all entities.
        assert {st.entity for st in p if st.txn == T_INIT} == {"x", "y"}
        assert {st.entity for st in p if st.txn == T_FINAL} == {"x", "y"}

    def test_padded_with_extra_entities(self):
        s = parse_schedule("R1(x)")
        p = s.padded(entities=["x", "z"])
        assert {st.entity for st in p if st.txn == T_INIT} == {"x", "z"}

    def test_double_padding_rejected(self):
        s = parse_schedule("R1(x)").padded()
        with pytest.raises(ValueError):
            s.padded()

    def test_unpadded_roundtrip(self):
        s = parse_schedule("R1(x) W2(x)")
        assert s.padded().unpadded() == s

    def test_is_padded(self):
        s = parse_schedule("R1(x)")
        assert not s.is_padded()
        assert s.padded().is_padded()


class TestTransformations:
    def test_prefix(self):
        s = parse_schedule("R1(x) W1(x) R2(x)")
        assert str(s.prefix(2)) == "R1(x) W1(x)"

    def test_prefixes_count(self):
        s = parse_schedule("R1(x) W1(x)")
        assert len(list(s.prefixes())) == 3

    def test_swap(self):
        s = parse_schedule("R1(x) W2(y)")
        assert str(s.swap(0)) == "W2(y) R1(x)"

    def test_swap_out_of_range(self):
        with pytest.raises(IndexError):
            parse_schedule("R1(x)").swap(0)

    def test_common_prefix_length(self):
        a = parse_schedule("R1(x) W1(x) R2(x)")
        b = parse_schedule("R1(x) W1(x) W2(y)")
        assert a.common_prefix_length(b) == 2
        assert a.common_prefix_length(a) == 3

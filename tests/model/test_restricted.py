"""The restricted model (no readless writes) of [PK84]."""

import random

from repro.classes.dmvsr import is_dmvsr
from repro.classes.mvsr import is_mvsr
from repro.model.enumeration import (
    random_interleaving,
    random_transaction,
    restricted_random_system,
    to_restricted,
)
from repro.model.parsing import parse_transaction


class TestToRestricted:
    def test_blind_write_gets_read(self):
        t = parse_transaction(1, "W(x) R(y)")
        assert str(to_restricted(t)) == "R1(x) W1(x) R1(y)"

    def test_covered_write_unchanged(self):
        t = parse_transaction(1, "R(x) W(x)")
        assert to_restricted(t) == t

    def test_no_readless_writes_remain(self):
        rng = random.Random(0)
        for _ in range(50):
            t = to_restricted(
                random_transaction(1, ["x", "y", "z"], 4, rng)
            )
            assert t.readless_writes() == []


class TestRestrictedModelProperties:
    def test_dmvsr_equals_mvsr_in_restricted_model(self):
        """With no readless writes the DMVSR augmentation is the
        identity, so DMVSR and MVSR coincide — the regime where [PK84]
        show MVSR is polynomial."""
        rng = random.Random(1)
        for _ in range(80):
            system = restricted_random_system(2, ["x", "y"], 2, rng)
            s = random_interleaving(system, rng)
            assert is_dmvsr(s) == is_mvsr(s), str(s)

    def test_system_shape(self):
        rng = random.Random(2)
        system = restricted_random_system(3, ["x", "y"], 3, rng)
        assert len(system) == 3
        for t in system:
            assert t.readless_writes() == []

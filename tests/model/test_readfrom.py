"""READ-FROM relations, views, view equivalence, serial sources."""

from repro.model.parsing import parse_schedule
from repro.model.readfrom import (
    read_from_map,
    read_from_relation,
    serial_read_from_sources,
    view_equivalent,
    view_of,
)
from repro.model.schedules import T_INIT
from repro.model.version_functions import VersionFunction


class TestReadFromRelation:
    def test_standard_relation(self):
        s = parse_schedule("W1(x) R2(x) W2(y) R3(y)")
        assert read_from_relation(s) == {(1, "x", 2), (2, "y", 3)}

    def test_initial_reads(self):
        s = parse_schedule("R1(x)")
        assert read_from_relation(s) == {(T_INIT, "x", 1)}

    def test_custom_version_function(self):
        s = parse_schedule("W1(x) W2(x) R3(x)")
        older = VersionFunction({2: 0})
        assert read_from_relation(s, older) == {(1, "x", 3)}
        assert read_from_relation(s) == {(2, "x", 3)}

    def test_map_keeps_occurrences(self):
        s = parse_schedule("W1(x) R2(x) W3(x) R2(x)")
        assert read_from_map(s) == {1: 1, 3: 3}


class TestViews:
    def test_view_of(self):
        s = parse_schedule("W1(x) W1(y) R2(x) R2(y)")
        assert view_of(s, 2) == {("x", 1), ("y", 1)}

    def test_view_of_nonreader_empty(self):
        s = parse_schedule("W1(x)")
        assert view_of(s, 1) == frozenset()

    def test_view_equivalence(self):
        s = parse_schedule("W1(x) R2(x)")
        r = parse_schedule("W1(x) R2(x)")
        assert view_equivalent(s, r)

    def test_view_equivalence_with_version_functions(self):
        # s with the old-version assignment is equivalent to serial 2,1.
        s = parse_schedule("W1(x) W2(y) R1(y)")
        serial_21 = parse_schedule("W2(y) W1(x) R1(y)")
        vf = VersionFunction({2: 1})
        assert view_equivalent(s, serial_21, vf, None)
        assert view_equivalent(s, serial_21)  # standard already matches


class TestSerialSources:
    def test_simple_chain(self):
        s = parse_schedule("W1(x) R2(x)")
        sources = serial_read_from_sources(s, [1, 2])
        assert sources == {1: 1}
        sources = serial_read_from_sources(s, [2, 1])
        assert sources == {1: T_INIT}

    def test_own_write_then_read(self):
        s = parse_schedule("W1(x) W2(x) R2(x)")
        # In any serial order, T2 reads its own write.
        for order in ([1, 2], [2, 1]):
            assert serial_read_from_sources(s, order) == {2: 2}

    def test_read_before_own_write(self):
        s = parse_schedule("R2(x) W2(x) W1(x)")
        assert serial_read_from_sources(s, [1, 2]) == {0: 1}
        assert serial_read_from_sources(s, [2, 1]) == {0: T_INIT}

    def test_unknown_transaction_gives_none(self):
        s = parse_schedule("R1(x)")
        assert serial_read_from_sources(s, [2]) is None

    def test_last_writer_wins(self):
        s = parse_schedule("W1(x) W2(x) W3(x) R4(x)")
        assert serial_read_from_sources(s, [1, 2, 3, 4]) == {3: 3}
        assert serial_read_from_sources(s, [3, 2, 1, 4]) == {3: 1}

"""Version functions: legality, standard function, extension."""

import pytest

from repro.model.parsing import parse_schedule
from repro.model.schedules import T_INIT
from repro.model.version_functions import VersionFunction


S = parse_schedule("W1(x) R2(x) W3(x) R2(x) R4(y)")


class TestStandard:
    def test_assigns_last_prior_write(self):
        vf = VersionFunction.standard(S)
        assert vf[1] == 0  # first R2(x) reads W1(x)
        assert vf[3] == 2  # second R2(x) reads W3(x)

    def test_reads_with_no_writer_read_initial(self):
        vf = VersionFunction.standard(S)
        assert vf[4] == T_INIT

    def test_total_on_schedule(self):
        assert VersionFunction.standard(S).is_total_on(S)


class TestValidation:
    def test_standard_validates(self):
        VersionFunction.standard(S).validate(S)

    def test_non_read_position_rejected(self):
        with pytest.raises(ValueError):
            VersionFunction({0: T_INIT}).validate(S)

    def test_source_must_be_write(self):
        with pytest.raises(ValueError):
            VersionFunction({3: 1}).validate(S)  # source is a read

    def test_source_must_match_entity(self):
        s = parse_schedule("W1(y) R2(x)")
        with pytest.raises(ValueError):
            VersionFunction({1: 0}).validate(s)

    def test_source_must_precede_read(self):
        # "the multiversion approach can do nothing about a read that
        # arrived too early"
        with pytest.raises(ValueError):
            VersionFunction({1: 2}).validate(S)

    def test_older_version_is_legal(self):
        # The whole point of multiversion: the second R2(x) may be served
        # the older version W1(x).
        VersionFunction({1: 0, 3: 0, 4: T_INIT}).validate(S)


class TestCombinators:
    def test_source_txn(self):
        vf = VersionFunction({1: 0, 3: 0, 4: T_INIT})
        assert vf.source_txn(S, 1) == 1
        assert vf.source_txn(S, 4) == T_INIT

    def test_extends(self):
        small = VersionFunction({1: 0})
        big = VersionFunction({1: 0, 3: 2})
        assert big.extends(small)
        assert not small.extends(big)
        assert not VersionFunction({1: T_INIT}).extends(small)

    def test_restricted_to(self):
        vf = VersionFunction({1: 0, 3: 2})
        assert dict(vf.restricted_to([1]).assignments) == {1: 0}

    def test_merged_with(self):
        merged = VersionFunction({1: 0}).merged_with(VersionFunction({3: 2}))
        assert dict(merged.assignments) == {1: 0, 3: 2}

    def test_merge_conflict_rejected(self):
        with pytest.raises(ValueError):
            VersionFunction({1: 0}).merged_with(VersionFunction({1: T_INIT}))

    def test_container_protocol(self):
        vf = VersionFunction({1: 0})
        assert 1 in vf and 3 not in vf
        assert len(vf) == 1 and list(vf) == [1]

"""Transactions and transaction systems."""

import pytest

from repro.model.steps import read, write
from repro.model.transactions import Transaction, TransactionSystem


class TestTransaction:
    def test_build_from_pairs(self):
        t = Transaction.build("A", ("R", "x"), ("W", "x"), ("W", "y"))
        assert len(t) == 3
        assert [s.is_read for s in t] == [True, False, False]

    def test_build_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Transaction.build("A", ("Q", "x"))

    def test_steps_must_belong_to_transaction(self):
        with pytest.raises(ValueError):
            Transaction("A", (read("B", "x"),))

    def test_read_and_write_sets(self):
        t = Transaction.build("A", ("R", "x"), ("W", "y"), ("W", "x"))
        assert t.read_set == {"x"}
        assert t.write_set == {"x", "y"}
        assert t.entities == {"x", "y"}

    def test_readless_writes_blind_write(self):
        t = Transaction.build("A", ("W", "x"), ("R", "y"), ("W", "y"))
        assert t.readless_writes() == [0]

    def test_readless_writes_covered_write(self):
        t = Transaction.build("A", ("R", "x"), ("W", "x"))
        assert t.readless_writes() == []

    def test_readless_writes_double_blind(self):
        t = Transaction.build("A", ("W", "x"), ("W", "x"))
        # Both writes of x are blind: the transaction never reads x.
        assert t.readless_writes() == [0, 1]


class TestTransactionSystem:
    def test_lookup_and_iteration(self):
        a = Transaction.build("A", ("R", "x"))
        b = Transaction.build("B", ("W", "x"))
        system = TransactionSystem.of([a, b])
        assert system["A"] == a
        assert "B" in system
        assert list(system) == [a, b]
        assert system.txn_ids == ("A", "B")

    def test_duplicate_ids_rejected(self):
        a1 = Transaction.build("A", ("R", "x"))
        a2 = Transaction.build("A", ("W", "x"))
        with pytest.raises(ValueError):
            TransactionSystem.of([a1, a2])

    def test_entities_union(self):
        system = TransactionSystem.of(
            [
                Transaction.build("A", ("R", "x")),
                Transaction.build("B", ("W", "y"), ("R", "z")),
            ]
        )
        assert system.entities == {"x", "y", "z"}

    def test_total_steps(self):
        system = TransactionSystem.of(
            [
                Transaction.build("A", ("R", "x"), ("W", "x")),
                Transaction.build("B", ("W", "y")),
            ]
        )
        assert system.total_steps() == 3

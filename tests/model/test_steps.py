"""Steps and the two conflict notions."""

from repro.model.steps import (
    Op,
    conflicts_multiversion,
    conflicts_single_version,
    read,
    write,
)


class TestStepBasics:
    def test_read_constructor(self):
        step = read(1, "x")
        assert step.is_read and not step.is_write
        assert step.op is Op.READ
        assert step.txn == 1 and step.entity == "x"

    def test_write_constructor(self):
        step = write("A", "y")
        assert step.is_write and not step.is_read

    def test_str_matches_paper_notation(self):
        assert str(read(1, "x")) == "R1(x)"
        assert str(write("B", "acct")) == "WB(acct)"

    def test_steps_are_hashable_values(self):
        assert read(1, "x") == read(1, "x")
        assert read(1, "x") != write(1, "x")
        assert len({read(1, "x"), read(1, "x"), write(1, "x")}) == 2


class TestSingleVersionConflict:
    def test_write_write_conflicts(self):
        assert conflicts_single_version(write(1, "x"), write(2, "x"))

    def test_read_write_conflicts_both_orders(self):
        assert conflicts_single_version(read(1, "x"), write(2, "x"))
        assert conflicts_single_version(write(1, "x"), read(2, "x"))

    def test_read_read_does_not_conflict(self):
        assert not conflicts_single_version(read(1, "x"), read(2, "x"))

    def test_different_entities_do_not_conflict(self):
        assert not conflicts_single_version(write(1, "x"), write(2, "y"))

    def test_same_transaction_never_conflicts(self):
        assert not conflicts_single_version(write(1, "x"), write(1, "x"))


class TestMultiversionConflict:
    """The asymmetric conflict of §3: only R-before-W conflicts."""

    def test_read_then_write_conflicts(self):
        assert conflicts_multiversion(read(1, "x"), write(2, "x"))

    def test_write_then_read_does_not_conflict(self):
        # A late read can be served an older version.
        assert not conflicts_multiversion(write(1, "x"), read(2, "x"))

    def test_write_write_does_not_conflict(self):
        # Both versions coexist in the multiversion store.
        assert not conflicts_multiversion(write(1, "x"), write(2, "x"))

    def test_read_read_does_not_conflict(self):
        assert not conflicts_multiversion(read(1, "x"), read(2, "x"))

    def test_asymmetry(self):
        first, second = read(1, "x"), write(2, "x")
        assert conflicts_multiversion(first, second)
        assert not conflicts_multiversion(second, first)

    def test_multiversion_conflicts_are_a_subset_of_single_version(self):
        steps = [read(1, "x"), write(1, "x"), read(2, "x"), write(2, "x"),
                 read(2, "y"), write(3, "y")]
        for a in steps:
            for b in steps:
                if conflicts_multiversion(a, b):
                    assert conflicts_single_version(a, b)

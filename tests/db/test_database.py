"""Database facade: backend dispatch, the cross-mode metric contract,
deterministic reproducibility, and registry extension."""

import json

import pytest

from repro.db import (
    GUARANTEED_SCHEMA,
    BackendAdapter,
    Database,
    RunConfig,
    RunReport,
    backend_names,
    get_backend,
    register_backend,
)
from repro.db.backends import _REGISTRY
from repro.workloads.streams import ShardedBankScenario

MODES = ("serial", "parallel", "planner", "pipelined")
#: modes whose only aborts are logic aborts + planned cascades.
PLAN_MODES = ("planner", "pipelined")


def small_config(mode, **overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("deterministic", True)
    overrides.setdefault("seed", 3)
    return RunConfig(mode=mode, **overrides)


class TestRun:
    @pytest.mark.parametrize("mode", MODES)
    def test_named_scenario(self, mode):
        report = Database().run(
            "sharded-bank", small_config(mode), txns=60
        )
        assert report.mode == mode
        assert report.scenario == "sharded-bank"
        assert report.committed > 0
        assert report.invariant_ok
        assert report.final_state  # exposed for inspection
        assert report.metrics is not None  # native drill-down

    def test_scenario_instance(self):
        scenario = ShardedBankScenario(
            n_shards=2, accounts_per_shard=4, seed=5
        )
        report = Database().run(
            scenario, small_config("planner"), txns=40
        )
        assert report.scenario == "ShardedBankScenario"
        assert report.committed == 40
        assert report.cc_aborts == 0

    def test_instance_plus_params_rejected(self):
        scenario = ShardedBankScenario(n_shards=2, seed=5)
        with pytest.raises(ValueError, match="scenario_params"):
            Database().run(scenario, small_config("serial"), seed=7)

    def test_non_scenario_rejected(self):
        with pytest.raises(TypeError, match="not a scenario"):
            Database().run(object(), small_config("serial"))

    def test_missing_invariant_reported_as_unchecked(self):
        class Oracleless:
            def initial_state(self):
                return {"a": 1, "b": 2}

            def transaction_stream(self, n):
                return iter(())

        report = Database().run(Oracleless(), small_config("serial"))
        assert report.invariant_ok  # vacuous...
        assert not report.invariant_checked  # ...and says so
        assert "unchecked" in report.report()

    def test_default_config_from_constructor(self):
        db = Database(small_config("planner"))
        report = db.run("sharded-bank", txns=30)
        assert report.mode == "planner"

    def test_registries_discoverable(self):
        assert set(Database.backends()) == set(MODES)  # incl. pipelined
        assert set(Database.scenarios()) == {
            "bank", "inventory", "sharded-bank", "read-mostly",
            "abort-heavy",
        }


class TestMetricContract:
    """The satellite-pinned cross-mode contract: every registered
    backend yields the guaranteed keys, same types, stable order — and
    deterministic runs are byte-identical across invocations."""

    @pytest.mark.parametrize("mode", backend_names())
    def test_guaranteed_schema(self, mode):
        report = Database().run(
            "sharded-bank", small_config(mode), txns=40
        )
        d = report.as_dict()
        assert list(d) == [name for name, _ in GUARANTEED_SCHEMA]
        for name, expected_type in GUARANTEED_SCHEMA:
            assert isinstance(d[name], expected_type), (mode, name)
        json.dumps(d)  # JSON-serializable all the way down

    @pytest.mark.parametrize("mode", backend_names())
    def test_deterministic_runs_byte_identical(self, mode):
        dumps = [
            json.dumps(
                Database().run(
                    "sharded-bank", small_config(mode), txns=50
                ).as_dict()
            )
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_accounting_closes_per_mode(self):
        for mode in MODES:
            r = Database().run("sharded-bank", small_config(mode), txns=50)
            assert r.submitted == r.committed + r.gave_up + (
                r.aborted if mode in PLAN_MODES else 0
            )
            assert r.cc_aborts == (
                0 if mode in PLAN_MODES else r.aborted
            )

    def test_throughput_zeroed_only_in_dict(self):
        # The attribute keeps wall-clock (benchmarks need it); the dict
        # zeroes it so deterministic reports stay byte-stable.
        report = Database().run(
            "sharded-bank", small_config("planner"), txns=40
        )
        assert report.as_dict()["throughput"] == 0.0
        assert report.elapsed > 0


class TestBackendRegistry:
    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError, match="one of"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("serial"))

    def test_custom_backend_plugs_into_everything(self):
        """Registering an adapter is the whole plug-in step: RunConfig
        validation, Database dispatch and the report contract follow."""

        class EchoBackend(BackendAdapter):
            name = "echo"
            description = "commits nothing, proves the protocol"
            applicable = frozenset({"workers", "deterministic"})
            defaults = {"workers": 1, "deterministic": True}

            def _execute(self, stream, initial, config):
                from repro.engine.metrics import EngineMetrics

                metrics = EngineMetrics()
                for _ in stream:
                    metrics.attempts += 1
                return metrics, dict(initial)

            def _core(self, metrics):
                return {
                    "submitted": metrics.attempts,
                    "committed": 0,
                    "aborted": 0,
                    "gave_up": metrics.attempts,
                    "cc_aborts": 0,
                }

        register_backend(EchoBackend())
        try:
            assert "echo" in Database.backends()
            with pytest.raises(ValueError, match="batch_size"):
                RunConfig(mode="echo", batch_size=4)
            report = Database().run(
                "sharded-bank", RunConfig(mode="echo", seed=3), txns=10
            )
            assert isinstance(report, RunReport)
            assert report.submitted == 10 and report.committed == 0
            d = report.as_dict()
            assert list(d) == [name for name, _ in GUARANTEED_SCHEMA]
        finally:
            del _REGISTRY["echo"]

"""RunConfig: per-mode validation, defaults, and the no-silent-drop rule."""

import dataclasses

import pytest

from repro.db import RunConfig
from repro.engine.retry import RetryPolicy


class TestValidation:
    """Options a mode cannot honor are errors at construction —
    the satellite fix for ``_run_serial`` silently ignoring
    ``batch_size``/``deterministic``."""

    def test_serial_rejects_batch_size(self):
        with pytest.raises(ValueError, match="batch_size.*serial"):
            RunConfig(mode="serial", batch_size=8)

    def test_serial_rejects_nondeterministic(self):
        # The serial driver is single-threaded and seeded; it cannot
        # run non-deterministically, so False is a contradiction...
        with pytest.raises(ValueError, match="deterministic"):
            RunConfig(mode="serial", deterministic=False)

    def test_serial_accepts_deterministic_true(self):
        # ...while True is simply what every serial run already is.
        config = RunConfig(mode="serial", deterministic=True)
        assert config.deterministic is True

    @pytest.mark.parametrize(
        "option, value",
        [
            ("scheduler", "mvto"),
            ("retry", 3),
            ("epoch_max_steps", 64),
            ("gc_every", 8),
        ],
    )
    def test_planner_rejects_online_mode_options(self, option, value):
        with pytest.raises(ValueError, match=f"{option}.*planner"):
            RunConfig(mode="planner", **{option: value})

    def test_error_lists_applicable_options(self):
        with pytest.raises(ValueError, match="applicable options"):
            RunConfig(mode="planner", scheduler="si")

    def test_unknown_mode_lists_choices(self):
        with pytest.raises(ValueError, match="parallel.*planner.*serial"):
            RunConfig(mode="quantum")

    @pytest.mark.parametrize(
        "mode", ["serial", "parallel", "planner", "pipelined"]
    )
    def test_counts_must_be_positive(self, mode):
        with pytest.raises(ValueError, match="workers"):
            RunConfig(mode=mode, workers=0)

    @pytest.mark.parametrize("mode", ["serial", "parallel", "planner"])
    def test_lookahead_applies_only_to_pipelined(self, mode):
        with pytest.raises(ValueError, match=f"lookahead.*{mode}"):
            RunConfig(mode=mode, lookahead=2)

    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError, match="lookahead"):
            RunConfig(mode="pipelined", lookahead=0)

    def test_retry_must_be_policy_or_int(self):
        with pytest.raises(ValueError, match="retry"):
            RunConfig(mode="serial", retry="often")

    def test_retry_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RunConfig(mode="serial", retry=0)


class TestResolution:
    """Unset applicable options resolve to the backend's defaults, so a
    constructed config is always concrete."""

    def test_parallel_defaults(self):
        config = RunConfig(mode="parallel")
        assert config.scheduler == "mvto"
        assert config.workers == 4
        assert config.batch_size == 8
        assert config.deterministic is False
        assert config.epoch_max_steps == 128
        assert isinstance(config.retry, RetryPolicy)

    def test_serial_is_deterministic_by_default(self):
        assert RunConfig(mode="serial").deterministic is True

    def test_planner_leaves_inapplicable_unset(self):
        config = RunConfig(mode="planner")
        assert config.batch_size == 64
        assert config.scheduler is None
        assert config.retry is None
        assert config.epoch_max_steps is None
        assert config.lookahead is None  # sequential: nothing in flight

    def test_pipelined_defaults(self):
        config = RunConfig(mode="pipelined")
        assert config.workers == 4
        assert config.batch_size == 64
        assert config.deterministic is False
        assert config.lookahead == 1
        assert config.scheduler is None and config.retry is None

    def test_retry_int_shorthand(self):
        config = RunConfig(mode="serial", retry=3)
        assert config.retry == RetryPolicy(max_attempts=3)

    def test_explicit_values_survive(self):
        config = RunConfig(
            mode="parallel", workers=2, batch_size=16, seed=9
        )
        assert (config.workers, config.batch_size, config.seed) == (2, 16, 9)

    def test_frozen(self):
        config = RunConfig(mode="serial")
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.workers = 8

    def test_as_dict_is_json_ready_and_ordered(self):
        import json

        d = RunConfig(mode="parallel", retry=2).as_dict()
        json.dumps(d)  # no TypeError: RetryPolicy serialized
        assert list(d)[:2] == ["mode", "scheduler"]
        assert d["retry"]["max_attempts"] == 2
